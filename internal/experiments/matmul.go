package experiments

import (
	"fmt"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/tabulate"
)

// MatmulPoint is one execution of the §4.2 matmul experiment.
type MatmulPoint struct {
	Midplanes  int
	Partition  bgq.Partition
	Config     model.MatmulConfig
	Prediction model.Prediction
}

// MatmulFigure pairs current and proposed executions per midplane
// count (Figure 5 and Figure 6).
type MatmulFigure struct {
	Title   string
	PointsA []MatmulPoint // current
	PointsB []MatmulPoint // proposed
}

// Figure5 reproduces paper Figure 5: Strassen-Winograd communication
// times on Mira's current vs proposed partitions, via the calibrated
// CAPS cost model.
func Figure5() (MatmulFigure, error) {
	mira := bgq.Mira()
	fig := MatmulFigure{Title: "Figure 5: Mira matrix multiplication communication time"}
	for _, mp := range []int{4, 8, 16, 24} {
		cur, ok := mira.Predefined(mp)
		if !ok {
			return fig, fmt.Errorf("experiments: no predefined %d-midplane partition", mp)
		}
		prop, ok := mira.Proposed(mp)
		if !ok {
			return fig, fmt.Errorf("experiments: no proposed %d-midplane partition", mp)
		}
		pa, err := matmulPoint(mp, cur, MatmulTable3Config(mp, cur))
		if err != nil {
			return fig, err
		}
		pb, err := matmulPoint(mp, prop, MatmulTable3Config(mp, prop))
		if err != nil {
			return fig, err
		}
		fig.PointsA = append(fig.PointsA, pa)
		fig.PointsB = append(fig.PointsB, pb)
	}
	return fig, nil
}

// Figure6 reproduces paper Figure 6: the strong-scaling experiment
// (n=9408) on 2, 4 and 8 midplanes.
func Figure6() (MatmulFigure, error) {
	fig := MatmulFigure{Title: "Figure 6: Mira strong scaling (n=9408)"}
	for _, mp := range []int{2, 4, 8} {
		cur, prop := Table4Partitions(mp)
		pa, err := matmulPoint(mp, cur, Table4Config(mp, cur))
		if err != nil {
			return fig, err
		}
		pb, err := matmulPoint(mp, prop, Table4Config(mp, prop))
		if err != nil {
			return fig, err
		}
		fig.PointsA = append(fig.PointsA, pa)
		fig.PointsB = append(fig.PointsB, pb)
	}
	return fig, nil
}

func matmulPoint(mp int, p bgq.Partition, cfg model.MatmulConfig) (MatmulPoint, error) {
	pred, err := model.PredictMatmul(cfg)
	if err != nil {
		return MatmulPoint{}, err
	}
	return MatmulPoint{Midplanes: mp, Partition: p, Config: cfg, Prediction: pred}, nil
}

// Table renders the matmul figure with computation and communication
// components.
func (f MatmulFigure) Table() tabulate.Table {
	t := tabulate.Table{
		Title: f.Title,
		Headers: []string{"Midplanes",
			"current", "comp (s)", "comm (s)",
			"proposed", "comp (s)", "comm (s)",
			"comm speedup"},
	}
	for i := range f.PointsA {
		a, b := f.PointsA[i], f.PointsB[i]
		t.AddRow(a.Midplanes,
			a.Partition.String(), a.Prediction.ComputeSec, a.Prediction.CommSec,
			b.Partition.String(), b.Prediction.ComputeSec, b.Prediction.CommSec,
			fmt.Sprintf("%.2f", a.Prediction.CommSec/b.Prediction.CommSec))
	}
	return t
}

// Chart renders communication times as ASCII bars.
func (f MatmulFigure) Chart() tabulate.Chart {
	c := tabulate.Chart{Title: f.Title, XLabel: "midplanes", YLabel: "communication time (s)"}
	sa := tabulate.Series{Label: "comm (current)"}
	sb := tabulate.Series{Label: "comm (proposed)"}
	sc := tabulate.Series{Label: "computation"}
	for i := range f.PointsA {
		c.X = append(c.X, fmt.Sprintf("%d", f.PointsA[i].Midplanes))
		sa.Y = append(sa.Y, f.PointsA[i].Prediction.CommSec)
		sb.Y = append(sb.Y, f.PointsB[i].Prediction.CommSec)
		sc.Y = append(sc.Y, f.PointsA[i].Prediction.ComputeSec)
	}
	c.Series = []tabulate.Series{sc, sa, sb}
	return c
}
