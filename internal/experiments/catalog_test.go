package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/torus"
)

// TestCorruptedCatalogSurfacesErrors pins down the error-propagation
// contract: a machine catalog that cannot supply what an experiment
// needs produces an error from the generator, never a silent zero row
// (the old facade's `cur, _ := mira.Predefined(size)` pattern).
func TestCorruptedCatalogSurfacesErrors(t *testing.T) {
	ctx := context.Background()

	t.Run("resolver error", func(t *testing.T) {
		boom := errors.New("catalog store unreachable")
		c := Config{Machines: func(name string) (*bgq.Machine, error) { return nil, boom }}
		if _, err := c.Table1(ctx); !errors.Is(err, boom) {
			t.Errorf("Table1 err = %v, want the resolver error", err)
		}
		if _, err := c.Figure3(ctx); !errors.Is(err, boom) {
			t.Errorf("Figure3 err = %v, want the resolver error", err)
		}
	})

	t.Run("nil machine", func(t *testing.T) {
		c := Config{Machines: func(name string) (*bgq.Machine, error) { return nil, nil }}
		_, err := c.Table6(ctx)
		if err == nil || !strings.Contains(err.Error(), "no \"mira\"") {
			t.Errorf("Table6 err = %v, want catalog complaint", err)
		}
	})

	t.Run("missing predefined list", func(t *testing.T) {
		// A "Mira" that lost its predefined partition list entirely.
		bare, err := bgq.NewMachine("Mira", torus.Shape{4, 4, 3, 2})
		if err != nil {
			t.Fatal(err)
		}
		c := Config{Machines: func(name string) (*bgq.Machine, error) {
			if name == "mira" {
				return bare, nil
			}
			return DefaultMachines(name)
		}}
		for name, run := range map[string]func() error{
			"Table1":  func() error { _, err := c.Table1(ctx); return err },
			"Table6":  func() error { _, err := c.Table6(ctx); return err },
			"Figure1": func() error { _, err := c.Figure1(ctx); return err },
		} {
			if err := run(); err == nil {
				t.Errorf("%s: corrupted catalog produced no error", name)
			}
		}
	})

	t.Run("predefined list missing an experiment size", func(t *testing.T) {
		// A "Mira" whose predefined list stops at 16 midplanes: the
		// hardcoded 24-midplane rows of Figure 3, Figure 5 and Table 3
		// must surface the gap.
		small, err := bgq.NewMachine("Mira", torus.Shape{4, 4, 3, 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := small.SetPredefined([]torus.Shape{{4, 1, 1, 1}, {4, 2, 1, 1}, {4, 4, 1, 1}}); err != nil {
			t.Fatal(err)
		}
		c := Config{Machines: func(name string) (*bgq.Machine, error) {
			if name == "mira" {
				return small, nil
			}
			return DefaultMachines(name)
		}}
		for name, run := range map[string]func() error{
			"Figure3": func() error { _, err := c.Figure3(ctx); return err },
			"Figure5": func() error { _, err := c.Figure5(ctx); return err },
			"Table3":  func() error { _, err := c.Table3(ctx); return err },
		} {
			err := run()
			if err == nil || !strings.Contains(err.Error(), "24-midplane") {
				t.Errorf("%s: err = %v, want missing 24-midplane complaint", name, err)
			}
		}
	})

	t.Run("unknown machine name", func(t *testing.T) {
		if _, err := DefaultMachines("summit"); err == nil {
			t.Error("DefaultMachines should reject unknown names")
		}
	})

	t.Run("error does not produce zero rows", func(t *testing.T) {
		// Even when only one row errors, the whole table is rejected:
		// no partial output with silent gaps.
		calls := 0
		c := Config{Workers: 1, Machines: func(name string) (*bgq.Machine, error) {
			calls++
			if name == "juqueen" {
				return nil, fmt.Errorf("juqueen catalog corrupted")
			}
			return DefaultMachines(name)
		}}
		tab, err := c.Table7(ctx)
		if err == nil {
			t.Fatal("Table7 with corrupted JUQUEEN should error")
		}
		if len(tab.Rows) != 0 {
			t.Errorf("errored Table7 carried %d rows", len(tab.Rows))
		}
	})
}
