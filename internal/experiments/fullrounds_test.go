package experiments

import (
	"context"
	"math"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/model"
)

// TestFullRoundSimulationAtScale validates the one-round-scaled fast
// path against simulating all 26 rounds end-to-end at the real
// 4-midplane scale (2048 nodes, 2048 flows per round). The fluid
// model's rounds are identical, so the two must agree to floating
// point; this is the justification for Figure 3/4's fast path.
func TestFullRoundSimulationAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("26 full rounds at 2048 nodes")
	}
	for _, p := range []bgq.Partition{
		bgq.MustPartition(4, 1, 1, 1),
		bgq.MustPartition(2, 2, 1, 1),
	} {
		cfg := model.PaperPairing(p)
		fast, err := SimulatePairing(context.Background(), cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		full, err := SimulatePairing(context.Background(), cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-full)/full > 1e-9 {
			t.Errorf("%v: fast %v vs full %v", p, fast, full)
		}
	}
}
