// Package workload generates the traffic patterns of the paper's
// experiments and of the related-work stress tests: the furthest-node
// bisection pairing of Chen et al. [12] (§4.1), random permutations,
// all-to-all, nearest-neighbour halo exchange, and an adversarial
// pattern that concentrates traffic on the longest dimension. Each
// generator produces route.Demand lists consumable by the static
// analyzer (route.LoadMap) and the flow simulator (netsim).
package workload

import (
	"fmt"
	"math/rand"

	"netpart/internal/route"
	"netpart/internal/torus"
)

// BisectionPairing pairs every node with the node at maximal hop
// distance (offset by half of every ring) and exchanges bytes in both
// directions — the paper's §4.1 benchmark. The returned demands
// contain one entry per node (its outgoing flow).
func BisectionPairing(r *route.Router, bytes float64) []route.Demand {
	n := r.Torus().NumVertices()
	demands := make([]route.Demand, n)
	for v := 0; v < n; v++ {
		demands[v] = route.Demand{Src: v, Dst: r.FurthestNode(v), Bytes: bytes}
	}
	return demands
}

// RandomPermutation sends bytes from every node to a uniformly random
// distinct target (a derangement is not enforced; self-targets are
// re-rolled a bounded number of times then skipped).
func RandomPermutation(t *torus.Torus, bytes float64, rng *rand.Rand) []route.Demand {
	n := t.NumVertices()
	perm := rng.Perm(n)
	demands := make([]route.Demand, 0, n)
	for v, d := range perm {
		if v == d {
			continue
		}
		demands = append(demands, route.Demand{Src: v, Dst: d, Bytes: bytes})
	}
	return demands
}

// AllToAll sends bytes between every ordered pair of distinct nodes.
// Feasible only for small tori (n^2 demands).
func AllToAll(t *torus.Torus, bytes float64) ([]route.Demand, error) {
	n := t.NumVertices()
	if n > 4096 {
		return nil, fmt.Errorf("workload: all-to-all on %d nodes is too large", n)
	}
	demands := make([]route.Demand, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				demands = append(demands, route.Demand{Src: s, Dst: d, Bytes: bytes})
			}
		}
	}
	return demands, nil
}

// NearestNeighbor sends bytes from every node to each of its torus
// neighbours — the halo-exchange pattern of stencil codes, which is
// contention-free under dimension-ordered routing.
func NearestNeighbor(t *torus.Torus, bytes float64) []route.Demand {
	var demands []route.Demand
	t.ForEachVertex(func(v int) {
		for _, nb := range t.Neighbors(v, nil) {
			demands = append(demands, route.Demand{Src: v, Dst: nb, Bytes: bytes})
		}
	})
	return demands
}

// LongestDimShift shifts every node by half of the longest dimension
// only — the pure worst-case pattern for a partition's bisection, used
// by the machine-design ablations.
func LongestDimShift(t *torus.Torus, bytes float64) []route.Demand {
	dims := t.Dims()
	longest := 0
	for i, a := range dims {
		if a > dims[longest] {
			longest = i
		}
	}
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	n := t.NumVertices()
	demands := make([]route.Demand, 0, n)
	a := dims[longest]
	if a < 2 {
		return demands
	}
	for v := 0; v < n; v++ {
		c := v / strides[longest] % a
		dst := v + (((c+a/2)%a)-c)*strides[longest]
		demands = append(demands, route.Demand{Src: v, Dst: dst, Bytes: bytes})
	}
	return demands
}

// TotalBytes sums the demand volumes.
func TotalBytes(demands []route.Demand) float64 {
	t := 0.0
	for _, d := range demands {
		t += d.Bytes
	}
	return t
}
