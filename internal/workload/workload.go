// Package workload generates the traffic patterns of the paper's
// experiments and of the related-work stress tests: the furthest-node
// bisection pairing of Chen et al. [12] (§4.1), random permutations,
// all-to-all, nearest-neighbour halo exchange, and an adversarial
// pattern that concentrates traffic on the longest dimension. Each
// generator produces route.Demand lists consumable by the static
// analyzer (route.LoadMap) and the flow simulator (netsim).
//
// Every generator returns ([]route.Demand, error) with a uniform
// error contract: non-positive or non-finite byte volumes and node
// counts beyond the generator's feasibility bound are rejected up
// front, so a serving layer composing workloads from untrusted
// requests gets a validation error instead of an OOM or a silent
// zero-demand result.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"netpart/internal/route"
	"netpart/internal/torus"
)

// MaxNodes bounds the torus size the per-node generators accept: one
// demand per node (or per node-neighbour pair) stays allocatable far
// beyond paper scale, but a malformed request for a 10^9-node torus
// should fail fast instead of thrashing.
const MaxNodes = 1 << 20

// MaxAllToAllNodes bounds AllToAll, whose demand count is quadratic.
const MaxAllToAllNodes = 4096

// validate applies the shared generator preconditions: a positive,
// finite per-flow byte volume and a node count within bound.
func validate(generator string, n, maxNodes int, bytes float64) error {
	if bytes <= 0 || math.IsInf(bytes, 0) || math.IsNaN(bytes) {
		return fmt.Errorf("workload: %s: byte volume %v is not positive and finite", generator, bytes)
	}
	if n > maxNodes {
		return fmt.Errorf("workload: %s on %d nodes exceeds the %d-node bound", generator, n, maxNodes)
	}
	return nil
}

// BisectionPairing pairs every node with the node at maximal hop
// distance (offset by half of every ring) and exchanges bytes in both
// directions — the paper's §4.1 benchmark. The returned demands
// contain one entry per node (its outgoing flow).
func BisectionPairing(r *route.Router, bytes float64) ([]route.Demand, error) {
	n := r.Torus().NumVertices()
	if err := validate("bisection pairing", n, MaxNodes, bytes); err != nil {
		return nil, err
	}
	demands := make([]route.Demand, 0, n)
	for v := 0; v < n; v++ {
		if dst := r.FurthestNode(v); dst != v {
			demands = append(demands, route.Demand{Src: v, Dst: dst, Bytes: bytes})
		}
	}
	return demands, nil
}

// RandomPermutation sends bytes from every node to a uniformly random
// distinct target (a derangement is not enforced; self-targets are
// skipped).
func RandomPermutation(t *torus.Torus, bytes float64, rng *rand.Rand) ([]route.Demand, error) {
	n := t.NumVertices()
	if err := validate("random permutation", n, MaxNodes, bytes); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: random permutation needs a seeded *rand.Rand")
	}
	perm := rng.Perm(n)
	demands := make([]route.Demand, 0, n)
	for v, d := range perm {
		if v == d {
			continue
		}
		demands = append(demands, route.Demand{Src: v, Dst: d, Bytes: bytes})
	}
	return demands, nil
}

// AllToAll sends bytes between every ordered pair of distinct nodes.
// Feasible only for small tori (n^2 demands).
func AllToAll(t *torus.Torus, bytes float64) ([]route.Demand, error) {
	n := t.NumVertices()
	if err := validate("all-to-all", n, MaxAllToAllNodes, bytes); err != nil {
		return nil, err
	}
	demands := make([]route.Demand, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				demands = append(demands, route.Demand{Src: s, Dst: d, Bytes: bytes})
			}
		}
	}
	return demands, nil
}

// NearestNeighbor sends bytes from every node to each of its torus
// neighbours — the halo-exchange pattern of stencil codes, which is
// contention-free under dimension-ordered routing.
func NearestNeighbor(t *torus.Torus, bytes float64) ([]route.Demand, error) {
	if err := validate("nearest neighbour", t.NumVertices(), MaxNodes, bytes); err != nil {
		return nil, err
	}
	var demands []route.Demand
	t.ForEachVertex(func(v int) {
		for _, nb := range t.Neighbors(v, nil) {
			demands = append(demands, route.Demand{Src: v, Dst: nb, Bytes: bytes})
		}
	})
	return demands, nil
}

// LongestDimShift shifts every node by half of the longest dimension
// only — the pure worst-case pattern for a partition's bisection, used
// by the machine-design ablations. A torus whose longest dimension has
// length < 2 yields no demands.
func LongestDimShift(t *torus.Torus, bytes float64) ([]route.Demand, error) {
	if err := validate("longest-dim shift", t.NumVertices(), MaxNodes, bytes); err != nil {
		return nil, err
	}
	dims := t.Dims()
	longest := 0
	for i, a := range dims {
		if a > dims[longest] {
			longest = i
		}
	}
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	n := t.NumVertices()
	demands := make([]route.Demand, 0, n)
	a := dims[longest]
	if a < 2 {
		return demands, nil
	}
	for v := 0; v < n; v++ {
		c := v / strides[longest] % a
		dst := v + (((c+a/2)%a)-c)*strides[longest]
		if dst != v {
			demands = append(demands, route.Demand{Src: v, Dst: dst, Bytes: bytes})
		}
	}
	return demands, nil
}

// TotalBytes sums the demand volumes.
func TotalBytes(demands []route.Demand) float64 {
	t := 0.0
	for _, d := range demands {
		t += d.Bytes
	}
	return t
}
