package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"netpart/internal/route"
	"netpart/internal/torus"
)

// demandsOrFatal returns an unwrapper for generator results the test
// expects to succeed.
func demandsOrFatal(tb testing.TB) func(d []route.Demand, err error) []route.Demand {
	return func(d []route.Demand, err error) []route.Demand {
		if err != nil {
			tb.Helper()
			tb.Fatal(err)
		}
		return d
	}
}

func TestBisectionPairing(t *testing.T) {
	tor := torus.MustNew(8, 4, 2)
	r := route.NewRouter(tor)
	d := demandsOrFatal(t)(BisectionPairing(r, 100))
	if len(d) != tor.NumVertices() {
		t.Fatalf("%d demands", len(d))
	}
	// Pairing is an involution: demands come in symmetric pairs.
	dst := map[int]int{}
	for _, dm := range d {
		dst[dm.Src] = dm.Dst
		if dm.Bytes != 100 {
			t.Error("bytes")
		}
	}
	for s, dd := range dst {
		if dst[dd] != s {
			t.Errorf("pairing not symmetric: %d -> %d -> %d", s, dd, dst[dd])
		}
		if s == dd {
			t.Errorf("self pairing at %d", s)
		}
	}
	if TotalBytes(d) != 100*float64(len(d)) {
		t.Error("total")
	}
}

func TestRandomPermutation(t *testing.T) {
	tor := torus.MustNew(4, 4)
	rng := rand.New(rand.NewSource(3))
	d := demandsOrFatal(t)(RandomPermutation(tor, 5, rng))
	if len(d) == 0 || len(d) > 16 {
		t.Fatalf("%d demands", len(d))
	}
	seenSrc := map[int]bool{}
	seenDst := map[int]bool{}
	for _, dm := range d {
		if dm.Src == dm.Dst {
			t.Error("self demand")
		}
		if seenSrc[dm.Src] || seenDst[dm.Dst] {
			t.Error("not a permutation")
		}
		seenSrc[dm.Src] = true
		seenDst[dm.Dst] = true
	}
}

func TestAllToAll(t *testing.T) {
	tor := torus.MustNew(3, 2)
	d, err := AllToAll(tor, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 6*5 {
		t.Errorf("%d demands, want 30", len(d))
	}
	big := torus.MustNew(26, 26, 8)
	if _, err := AllToAll(big, 1); err == nil {
		t.Error("oversized all-to-all should fail")
	}
}

func TestNearestNeighborContentionFree(t *testing.T) {
	tor := torus.MustNew(6, 4)
	r := route.NewRouter(tor)
	d := demandsOrFatal(t)(NearestNeighbor(tor, 7))
	if len(d) != tor.NumVertices()*tor.Degree() {
		t.Fatalf("%d demands", len(d))
	}
	// Single-hop demands: each directed link carries at most one.
	load := r.LoadMap(d)
	maxL, _ := route.MaxLoad(load)
	if maxL != 7 {
		t.Errorf("halo exchange bottleneck %v, want 7 (contention-free)", maxL)
	}
}

func TestLongestDimShift(t *testing.T) {
	tor := torus.MustNew(8, 4, 2)
	r := route.NewRouter(tor)
	d := demandsOrFatal(t)(LongestDimShift(tor, 1))
	if len(d) != tor.NumVertices() {
		t.Fatalf("%d demands", len(d))
	}
	// All traffic in dimension 0: bottleneck = L/2 = 4 flows.
	maxL, link := route.MaxLoad(r.LoadMap(d))
	if maxL != 4 {
		t.Errorf("bottleneck %v, want 4", maxL)
	}
	_, dim, _ := r.LinkInfo(link)
	if dim != 0 {
		t.Errorf("bottleneck in dimension %d, want 0", dim)
	}
	// Degenerate: all dims length 1.
	if d := demandsOrFatal(t)(LongestDimShift(torus.MustNew(1, 1), 1)); len(d) != 0 {
		t.Error("degenerate shift should be empty")
	}
}

// TestGeneratorErrorPaths exercises the uniform error contract: every
// generator rejects non-positive and non-finite byte volumes, and the
// specific preconditions (nil RNG, negative iteration bounds) fail
// with descriptive errors instead of panicking or silently returning
// zero demands.
func TestGeneratorErrorPaths(t *testing.T) {
	tor := torus.MustNew(4, 4)
	r := route.NewRouter(tor)
	rng := rand.New(rand.NewSource(1))

	badBytes := []float64{0, -1, math.Inf(1), math.NaN()}
	gens := []struct {
		name string
		run  func(bytes float64) ([]route.Demand, error)
	}{
		{"pairing", func(b float64) ([]route.Demand, error) { return BisectionPairing(r, b) }},
		{"permutation", func(b float64) ([]route.Demand, error) { return RandomPermutation(tor, b, rng) }},
		{"all-to-all", func(b float64) ([]route.Demand, error) { return AllToAll(tor, b) }},
		{"neighbor", func(b float64) ([]route.Demand, error) { return NearestNeighbor(tor, b) }},
		{"longest-dim", func(b float64) ([]route.Demand, error) { return LongestDimShift(tor, b) }},
		{"adversarial", func(b float64) ([]route.Demand, error) { return NearWorstCase(tor, b, 10, 1) }},
	}
	for _, g := range gens {
		for _, b := range badBytes {
			d, err := g.run(b)
			if err == nil {
				t.Errorf("%s accepted bytes=%v", g.name, b)
			}
			if d != nil {
				t.Errorf("%s returned demands alongside an error", g.name)
			}
			if err != nil && !strings.Contains(err.Error(), "workload:") {
				t.Errorf("%s error %q lacks package prefix", g.name, err)
			}
		}
		// Valid volume still works.
		if _, err := g.run(8); err != nil {
			t.Errorf("%s rejected valid bytes: %v", g.name, err)
		}
	}

	if _, err := RandomPermutation(tor, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NearWorstCase(tor, 1, -1, 1); err == nil {
		t.Error("negative iters accepted")
	}
}
