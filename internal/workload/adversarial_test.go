package workload

import (
	"math/rand"
	"testing"

	"netpart/internal/route"
	"netpart/internal/torus"
)

func TestNearWorstCaseIsPermutation(t *testing.T) {
	tor := torus.MustNew(4, 4, 2)
	d := demandsOrFatal(t)(NearWorstCase(tor, 7, 200, 1))
	seenSrc := map[int]bool{}
	seenDst := map[int]bool{}
	for _, dm := range d {
		if dm.Src == dm.Dst {
			t.Error("self demand")
		}
		if seenSrc[dm.Src] || seenDst[dm.Dst] {
			t.Error("not a permutation")
		}
		seenSrc[dm.Src] = true
		seenDst[dm.Dst] = true
		if dm.Bytes != 7 {
			t.Error("bytes")
		}
	}
}

func TestNearWorstCaseAtLeastPairing(t *testing.T) {
	// The hill climb starts from the pairing, so its bottleneck load
	// can only grow.
	tor := torus.MustNew(8, 4, 4)
	r := route.NewRouter(tor)
	pairing := demandsOrFatal(t)(BisectionPairing(r, 1))
	base, _ := route.MaxLoad(r.LoadMap(pairing))
	adv := demandsOrFatal(t)(NearWorstCase(tor, 1, 500, 3))
	got, _ := route.MaxLoad(r.LoadMap(adv))
	if got < base {
		t.Errorf("adversarial load %v below pairing %v", got, base)
	}
}

func TestNearWorstCaseBeatsRandomPermutations(t *testing.T) {
	tor := torus.MustNew(6, 4, 2)
	r := route.NewRouter(tor)
	adv := demandsOrFatal(t)(NearWorstCase(tor, 1, 1000, 7))
	advLoad, _ := route.MaxLoad(r.LoadMap(adv))
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		perm := demandsOrFatal(t)(RandomPermutation(tor, 1, rng))
		load, _ := route.MaxLoad(r.LoadMap(perm))
		if load > advLoad {
			t.Errorf("random permutation load %v beats adversarial %v", load, advLoad)
		}
	}
}

func TestNearWorstCaseDeterministic(t *testing.T) {
	tor := torus.MustNew(4, 4)
	a := demandsOrFatal(t)(NearWorstCase(tor, 1, 300, 42))
	b := demandsOrFatal(t)(NearWorstCase(tor, 1, 300, 42))
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic for fixed seed")
		}
	}
}

func BenchmarkNearWorstCase(b *testing.B) {
	tor := torus.MustNew(8, 4, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NearWorstCase(tor, 1, 100, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
