package workload

import (
	"fmt"
	"math/rand"

	"netpart/internal/route"
	"netpart/internal/torus"
)

// NearWorstCase searches for a permutation traffic pattern that
// maximizes the bottleneck link load under the torus's deterministic
// routing — the "near-worst-case traffic" generation of Jyothi et al.
// [19], realized as a randomized hill climb: start from the
// furthest-node pairing (already bisection-saturating), then try
// destination swaps that increase the maximum link load. The result
// is a permutation (each node sends and receives exactly once).
//
// iters bounds the number of swap attempts; the search is
// deterministic for a fixed seed.
func NearWorstCase(t *torus.Torus, bytes float64, iters int, seed int64) ([]route.Demand, error) {
	n := t.NumVertices()
	if err := validate("near-worst-case", n, MaxNodes, bytes); err != nil {
		return nil, err
	}
	if iters < 0 {
		return nil, fmt.Errorf("workload: near-worst-case: negative iteration bound %d", iters)
	}
	r := route.NewRouter(t)
	rng := rand.New(rand.NewSource(seed))

	// dst[i] = destination of node i; start from the antipodal pairing.
	dst := make([]int, n)
	for v := 0; v < n; v++ {
		dst[v] = r.FurthestNode(v)
	}

	load := make([]float64, r.NumLinks())
	buf := make([]int, 0, 64)
	addRoute := func(src, d int, sign float64) {
		buf = r.Route(src, d, buf[:0])
		for _, l := range buf {
			load[l] += sign
		}
	}
	for v := 0; v < n; v++ {
		addRoute(v, dst[v], 1)
	}
	maxLoad := func() float64 {
		m, _ := route.MaxLoad(load)
		return m
	}

	cur := maxLoad()
	for it := 0; it < iters; it++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b || dst[a] == b || dst[b] == a {
			continue
		}
		// Swap destinations of a and b.
		addRoute(a, dst[a], -1)
		addRoute(b, dst[b], -1)
		dst[a], dst[b] = dst[b], dst[a]
		addRoute(a, dst[a], 1)
		addRoute(b, dst[b], 1)
		if next := maxLoad(); next >= cur {
			cur = next // keep (accept ties: plateau walks help escape)
			continue
		}
		// Revert.
		addRoute(a, dst[a], -1)
		addRoute(b, dst[b], -1)
		dst[a], dst[b] = dst[b], dst[a]
		addRoute(a, dst[a], 1)
		addRoute(b, dst[b], 1)
	}

	demands := make([]route.Demand, 0, n)
	for v := 0; v < n; v++ {
		if v != dst[v] {
			demands = append(demands, route.Demand{Src: v, Dst: dst[v], Bytes: bytes})
		}
	}
	return demands, nil
}
