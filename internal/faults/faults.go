// Package faults is the declarative failure and degradation model —
// the chaos axis of the experiment stack. A Spec names a failure
// model (explicit link or midplane lists, or seeded random
// generators), a capacity factor (0 fails the affected elements
// outright; (0,1) degrades them) and, for trace simulations, a set of
// time windows during which the failure is live.
//
// Specs are wire-friendly, validated and normalized, and embed into
// scenario and trace specs — so they participate in the content-hash
// cache identity of every experiment that carries them: two requests
// with equal failure specs (and equal host specs) are guaranteed
// byte-identical outcomes.
//
// Resolution is deterministic: the random models draw from a seeded
// generator over a deterministic element enumeration, so the same
// spec always fails the same elements on the same topology —
// sweepable chaos, not flaky chaos.
package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"netpart/internal/torus"
)

// Failure models.
const (
	// ModelLinks fails/degrades an explicit list of undirected link
	// IDs (the routing backend's deterministic edge enumeration).
	ModelLinks = "links"
	// ModelMidplanes fails an explicit list of midplane cells
	// (row-major indices into the machine's midplane grid).
	ModelMidplanes = "midplanes"
	// ModelRandomLinks fails/degrades a seeded random Fraction of the
	// links.
	ModelRandomLinks = "random_links"
	// ModelRandomMidplanes fails a seeded random Fraction of the
	// midplanes.
	ModelRandomMidplanes = "random_midplanes"
	// ModelCorrelatedRegion fails/degrades a contiguous region grown
	// by BFS from a seeded random center — links in scenarios (a
	// localized network failure), midplanes in trace simulations (a
	// rack-level outage).
	ModelCorrelatedRegion = "correlated_region"
)

// DefaultSeed seeds the random models when the spec leaves Seed zero.
const DefaultSeed = int64(1)

// MaxWindows bounds the outage windows of one spec.
const MaxWindows = 64

// Window is one outage interval [StartSec, EndSec): the failure is
// applied when the window opens and healed when it closes. Specs
// without windows are permanently failed.
type Window struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

// Spec is one declarative failure model. The zero value is invalid;
// construct with a Model and call Normalize (the scenario and trace
// normalizers do this for embedded specs).
type Spec struct {
	Model string `json:"model"`
	// Factor is the capacity multiplier of the affected elements: 0
	// (the default) removes them outright — links disappear from
	// routing, midplanes from candidate enumeration — while a value in
	// (0,1) degrades them (links keep routing at reduced capacity;
	// jobs on degraded midplanes run 1/Factor slower while a window is
	// open). Factor 1 is an explicit no-op, useful as the healthy
	// endpoint of a sweep axis.
	Factor float64 `json:"factor,omitempty"`
	// Seed drives the random models (default DefaultSeed).
	Seed int64 `json:"seed,omitempty"`
	// Fraction is the share of the element universe the random models
	// affect, in [0,1]; 0 is the healthy endpoint of a sweep axis.
	Fraction float64 `json:"fraction,omitempty"`
	// Links are the explicit undirected link IDs of ModelLinks.
	Links []int `json:"links,omitempty"`
	// Midplanes are the explicit midplane cells of ModelMidplanes.
	Midplanes []int `json:"midplanes,omitempty"`
	// Windows are the outage intervals applied by the trace
	// simulator's event loop (sorted, non-overlapping). Empty means
	// the failure holds for the whole run. Scenarios (no time axis)
	// reject windows.
	Windows []Window `json:"windows,omitempty"`
}

func knownModel(m string) bool {
	switch m {
	case ModelLinks, ModelMidplanes, ModelRandomLinks, ModelRandomMidplanes, ModelCorrelatedRegion:
		return true
	}
	return false
}

// LinkScoped reports whether the model addresses links when resolved
// against a network (scenarios). ModelCorrelatedRegion is link-scoped
// in scenarios and midplane-scoped in trace simulations.
func (s Spec) LinkScoped() bool {
	return s.Model == ModelLinks || s.Model == ModelRandomLinks || s.Model == ModelCorrelatedRegion
}

// MidplaneScoped reports whether the model addresses midplane cells.
func (s Spec) MidplaneScoped() bool {
	return s.Model == ModelMidplanes || s.Model == ModelRandomMidplanes
}

// Random reports whether the model consumes the seed.
func (s Spec) Random() bool {
	return s.Model == ModelRandomLinks || s.Model == ModelRandomMidplanes || s.Model == ModelCorrelatedRegion
}

// normIDs validates, sorts and dedupes an explicit ID list.
func normIDs(field string, ids []int) ([]int, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("faults: model needs a non-empty %s list", field)
	}
	out := append([]int(nil), ids...)
	sort.Ints(out)
	dst := out[:0]
	for i, id := range out {
		if id < 0 {
			return nil, fmt.Errorf("faults: %s[%d] = %d is negative", field, i, id)
		}
		if len(dst) == 0 || dst[len(dst)-1] != id {
			dst = append(dst, id)
		}
	}
	return dst, nil
}

// Normalize validates the spec and returns its canonical form: the
// model lower-cased, ID lists sorted and deduped, the seed defaulted
// for random models and zeroed otherwise, and contradictory knobs
// rejected. Range validation against a concrete topology (link and
// midplane ID bounds) happens in the host spec's normalizer, which
// knows the universe sizes.
func (s Spec) Normalize() (Spec, error) {
	n := Spec{Model: strings.ToLower(strings.TrimSpace(s.Model))}
	if !knownModel(n.Model) {
		return Spec{}, fmt.Errorf("faults: unknown model %q (want links, midplanes, random_links, random_midplanes or correlated_region)", s.Model)
	}
	n.Factor = s.Factor
	if math.IsNaN(n.Factor) || n.Factor < 0 || n.Factor > 1 {
		return Spec{}, fmt.Errorf("faults: capacity factor %v out of range [0, 1]", s.Factor)
	}
	if n.Random() {
		if len(s.Links) > 0 || len(s.Midplanes) > 0 {
			return Spec{}, fmt.Errorf("faults: model %s draws its elements from the seed; explicit links/midplanes only apply to the links and midplanes models", n.Model)
		}
		if math.IsNaN(s.Fraction) || s.Fraction < 0 || s.Fraction > 1 {
			return Spec{}, fmt.Errorf("faults: fraction %v out of range [0, 1]", s.Fraction)
		}
		n.Fraction = s.Fraction
		n.Seed = s.Seed
		if n.Seed == 0 {
			n.Seed = DefaultSeed
		}
	} else {
		if s.Fraction != 0 {
			return Spec{}, fmt.Errorf("faults: fraction only applies to the random models, not %s", n.Model)
		}
		if s.Seed != 0 {
			return Spec{}, fmt.Errorf("faults: seed only applies to the random models, not %s", n.Model)
		}
		var err error
		switch n.Model {
		case ModelLinks:
			if len(s.Midplanes) > 0 {
				return Spec{}, fmt.Errorf("faults: model links takes a links list, not midplanes")
			}
			n.Links, err = normIDs("links", s.Links)
		case ModelMidplanes:
			if len(s.Links) > 0 {
				return Spec{}, fmt.Errorf("faults: model midplanes takes a midplanes list, not links")
			}
			n.Midplanes, err = normIDs("midplanes", s.Midplanes)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if len(s.Windows) > MaxWindows {
		return Spec{}, fmt.Errorf("faults: %d outage windows exceed the %d-window bound", len(s.Windows), MaxWindows)
	}
	prevEnd := 0.0
	for i, w := range s.Windows {
		if math.IsNaN(w.StartSec) || math.IsInf(w.StartSec, 0) || w.StartSec < 0 {
			return Spec{}, fmt.Errorf("faults: window[%d] start %v is not non-negative and finite", i, w.StartSec)
		}
		if math.IsNaN(w.EndSec) || math.IsInf(w.EndSec, 0) || w.EndSec <= w.StartSec {
			return Spec{}, fmt.Errorf("faults: window[%d] [%v, %v) is not a finite forward interval", i, w.StartSec, w.EndSec)
		}
		if w.StartSec < prevEnd {
			return Spec{}, fmt.Errorf("faults: window[%d] starts at %v, overlapping or preceding the previous window ending at %v (windows must be sorted and disjoint)", i, w.StartSec, prevEnd)
		}
		prevEnd = w.EndSec
	}
	if len(s.Windows) > 0 {
		n.Windows = append([]Window(nil), s.Windows...)
	}
	return n, nil
}

// Key returns the canonical JSON encoding of the spec. Embedded specs
// hash through their host spec's Key; standalone callers can use this
// for cache identity.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable fields; unreachable.
		panic(fmt.Sprintf("faults: marshal spec: %v", err))
	}
	return string(b)
}

// count converts a fraction of a universe into an element count.
func count(fraction float64, n int) int {
	return int(math.Round(fraction * float64(n)))
}

// Universe is the undirected-link fault domain of a network: the link
// count, per-link endpoints (for region growth) and the vertex count.
// Routing backends build one from their deterministic edge
// enumeration, so link IDs are stable for a given topology + routing.
type Universe struct {
	NumVertices int
	EndA, EndB  []int32 // endpoints of link l, len == number of links
}

// ResolveLinks materializes the affected undirected link set of a
// link-scoped spec against the universe: the explicit list validated
// against the bound, or the seeded random/region selection. The
// result is sorted ascending and deterministic.
func (s Spec) ResolveLinks(u Universe) ([]int, error) {
	nl := len(u.EndA)
	switch s.Model {
	case ModelLinks:
		for _, id := range s.Links {
			if id >= nl {
				return nil, fmt.Errorf("faults: link %d out of range (topology has %d links)", id, nl)
			}
		}
		return append([]int(nil), s.Links...), nil
	case ModelRandomLinks:
		rng := rand.New(rand.NewSource(s.Seed))
		k := count(s.Fraction, nl)
		if k == 0 {
			return nil, nil
		}
		picked := rng.Perm(nl)[:k]
		sort.Ints(picked)
		return picked, nil
	case ModelCorrelatedRegion:
		return s.regionLinks(u)
	}
	return nil, fmt.Errorf("faults: model %s is not link-scoped", s.Model)
}

// regionLinks grows a contiguous link region: BFS from a seeded
// random center vertex, collecting every link incident to the visited
// ball until the target count is reached.
func (s Spec) regionLinks(u Universe) ([]int, error) {
	nl := len(u.EndA)
	k := count(s.Fraction, nl)
	if k == 0 {
		return nil, nil
	}
	// Vertex adjacency (vertex -> incident link IDs), CSR-style.
	deg := make([]int32, u.NumVertices+1)
	for l := 0; l < nl; l++ {
		deg[u.EndA[l]+1]++
		deg[u.EndB[l]+1]++
	}
	for v := 0; v < u.NumVertices; v++ {
		deg[v+1] += deg[v]
	}
	inc := make([]int32, deg[u.NumVertices])
	fill := make([]int32, u.NumVertices)
	for l := 0; l < nl; l++ {
		for _, v := range [2]int32{u.EndA[l], u.EndB[l]} {
			inc[deg[v]+fill[v]] = int32(l)
			fill[v]++
		}
	}

	rng := rand.New(rand.NewSource(s.Seed))
	center := int32(rng.Intn(u.NumVertices))
	visited := make([]bool, u.NumVertices)
	taken := make([]bool, nl)
	var region []int
	queue := []int32{center}
	visited[center] = true
	for qi := 0; qi < len(queue) && len(region) < k; qi++ {
		v := queue[qi]
		for _, l := range inc[deg[v]:deg[v+1]] {
			if !taken[l] {
				taken[l] = true
				region = append(region, int(l))
				if len(region) >= k {
					break
				}
			}
			w := u.EndA[l]
			if w == v {
				w = u.EndB[l]
			}
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	sort.Ints(region)
	return region, nil
}

// ResolveMidplanes materializes the affected midplane cells of a
// midplane-scoped spec (or a correlated region in midplane space)
// against a machine's midplane grid. Cells are row-major indices
// (last dimension fastest), matching the scheduler's occupancy grid.
// The result is sorted ascending and deterministic.
func (s Spec) ResolveMidplanes(grid torus.Shape) ([]int, error) {
	tor, err := torus.New(grid...)
	if err != nil {
		return nil, fmt.Errorf("faults: midplane grid %s: %w", grid, err)
	}
	n := tor.NumVertices()
	switch s.Model {
	case ModelMidplanes:
		for _, id := range s.Midplanes {
			if id >= n {
				return nil, fmt.Errorf("faults: midplane %d out of range (machine has %d midplanes)", id, n)
			}
		}
		return append([]int(nil), s.Midplanes...), nil
	case ModelRandomMidplanes:
		rng := rand.New(rand.NewSource(s.Seed))
		k := count(s.Fraction, n)
		if k == 0 {
			return nil, nil
		}
		picked := rng.Perm(n)[:k]
		sort.Ints(picked)
		return picked, nil
	case ModelCorrelatedRegion:
		k := count(s.Fraction, n)
		if k == 0 {
			return nil, nil
		}
		rng := rand.New(rand.NewSource(s.Seed))
		center := rng.Intn(n)
		visited := make([]bool, n)
		visited[center] = true
		region := []int{center}
		var nbuf []int
		for qi := 0; qi < len(region) && len(region) < k; qi++ {
			nbuf = tor.Neighbors(region[qi], nbuf[:0])
			for _, w := range nbuf {
				if !visited[w] {
					visited[w] = true
					region = append(region, w)
					if len(region) >= k {
						break
					}
				}
			}
		}
		sort.Ints(region)
		return region, nil
	}
	return nil, fmt.Errorf("faults: model %s is not midplane-scoped", s.Model)
}
