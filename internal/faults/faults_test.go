package faults

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"netpart/internal/torus"
)

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"empty model", Spec{}, "unknown model"},
		{"unknown model", Spec{Model: "meteor"}, "unknown model"},
		{"factor NaN", Spec{Model: ModelRandomLinks, Factor: math.NaN(), Fraction: 0.1}, "capacity factor"},
		{"factor negative", Spec{Model: ModelRandomLinks, Factor: -0.1, Fraction: 0.1}, "capacity factor"},
		{"factor above one", Spec{Model: ModelRandomLinks, Factor: 1.5, Fraction: 0.1}, "capacity factor"},
		{"random with explicit links", Spec{Model: ModelRandomLinks, Fraction: 0.1, Links: []int{1}}, "draws its elements from the seed"},
		{"region with explicit midplanes", Spec{Model: ModelCorrelatedRegion, Fraction: 0.1, Midplanes: []int{1}}, "draws its elements from the seed"},
		{"fraction NaN", Spec{Model: ModelRandomLinks, Fraction: math.NaN()}, "fraction"},
		{"fraction negative", Spec{Model: ModelRandomMidplanes, Fraction: -0.5}, "fraction"},
		{"fraction above one", Spec{Model: ModelRandomMidplanes, Fraction: 1.5}, "fraction"},
		{"explicit with fraction", Spec{Model: ModelLinks, Links: []int{0}, Fraction: 0.5}, "fraction only applies"},
		{"explicit with seed", Spec{Model: ModelLinks, Links: []int{0}, Seed: 7}, "seed only applies"},
		{"links empty", Spec{Model: ModelLinks}, "non-empty links list"},
		{"midplanes empty", Spec{Model: ModelMidplanes}, "non-empty midplanes list"},
		{"links negative ID", Spec{Model: ModelLinks, Links: []int{3, -1}}, "negative"},
		{"links takes links", Spec{Model: ModelLinks, Links: []int{0}, Midplanes: []int{0}}, "not midplanes"},
		{"midplanes takes midplanes", Spec{Model: ModelMidplanes, Midplanes: []int{0}, Links: []int{0}}, "not links"},
		{"window inverted", Spec{Model: ModelMidplanes, Midplanes: []int{0}, Windows: []Window{{StartSec: 5, EndSec: 5}}}, "forward interval"},
		{"window negative start", Spec{Model: ModelMidplanes, Midplanes: []int{0}, Windows: []Window{{StartSec: -1, EndSec: 5}}}, "non-negative"},
		{"window infinite end", Spec{Model: ModelMidplanes, Midplanes: []int{0}, Windows: []Window{{StartSec: 0, EndSec: math.Inf(1)}}}, "forward interval"},
		{"windows overlap", Spec{Model: ModelMidplanes, Midplanes: []int{0}, Windows: []Window{{0, 10}, {5, 20}}}, "sorted and disjoint"},
		{"windows unsorted", Spec{Model: ModelMidplanes, Midplanes: []int{0}, Windows: []Window{{50, 60}, {0, 10}}}, "sorted and disjoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) = nil error, want %q", tc.spec, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	many := make([]Window, MaxWindows+1)
	for i := range many {
		many[i] = Window{StartSec: float64(2 * i), EndSec: float64(2*i + 1)}
	}
	if _, err := (Spec{Model: ModelMidplanes, Midplanes: []int{0}, Windows: many}).Normalize(); err == nil {
		t.Fatalf("expected window-bound error for %d windows", len(many))
	}
}

func TestNormalizeCanonical(t *testing.T) {
	n, err := Spec{Model: " Links ", Links: []int{5, 1, 5, 3}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Model != ModelLinks {
		t.Fatalf("model %q", n.Model)
	}
	if want := []int{1, 3, 5}; !reflect.DeepEqual(n.Links, want) {
		t.Fatalf("links %v, want sorted dedup %v", n.Links, want)
	}
	if n.Seed != 0 {
		t.Fatalf("explicit model seed %d, want 0", n.Seed)
	}

	r, err := Spec{Model: ModelRandomMidplanes, Fraction: 0.25}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != DefaultSeed {
		t.Fatalf("seed %d, want default %d", r.Seed, DefaultSeed)
	}
	// Factor 1 (explicit no-op) and Fraction 0 (healthy endpoint)
	// normalize cleanly: they are the healthy ends of sweep axes.
	if _, err := (Spec{Model: ModelRandomLinks, Factor: 1}).Normalize(); err != nil {
		t.Fatalf("factor 1: %v", err)
	}
	if _, err := (Spec{Model: ModelRandomLinks, Fraction: 0}).Normalize(); err != nil {
		t.Fatalf("fraction 0: %v", err)
	}
}

// ringUniverse builds the link universe of an n-cycle.
func ringUniverse(n int) Universe {
	u := Universe{NumVertices: n}
	for v := 0; v < n; v++ {
		u.EndA = append(u.EndA, int32(v))
		u.EndB = append(u.EndB, int32((v+1)%n))
	}
	return u
}

func TestResolveLinksDeterminism(t *testing.T) {
	u := ringUniverse(40)
	spec := Spec{Model: ModelRandomLinks, Fraction: 0.3, Seed: 11}
	a, err := spec.ResolveLinks(u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.ResolveLinks(u)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed resolved %v then %v", a, b)
	}
	if want := 12; len(a) != want {
		t.Fatalf("fraction 0.3 of 40 links picked %d, want %d", len(a), want)
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("result not sorted ascending: %v", a)
		}
	}
	other, err := Spec{Model: ModelRandomLinks, Fraction: 0.3, Seed: 12}.ResolveLinks(u)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatalf("seeds 11 and 12 picked the same set %v", a)
	}
}

func TestResolveLinksBounds(t *testing.T) {
	u := ringUniverse(8)
	if _, err := (Spec{Model: ModelLinks, Links: []int{7}}).ResolveLinks(u); err != nil {
		t.Fatalf("in-range link: %v", err)
	}
	if _, err := (Spec{Model: ModelLinks, Links: []int{8}}).ResolveLinks(u); err == nil {
		t.Fatal("link 8 of 8 should be out of range")
	}
	if _, err := (Spec{Model: ModelMidplanes, Midplanes: []int{0}}).ResolveLinks(u); err == nil {
		t.Fatal("midplane model is not link-scoped")
	}
}

func TestRegionLinksContiguous(t *testing.T) {
	u := ringUniverse(64)
	region, err := Spec{Model: ModelCorrelatedRegion, Fraction: 0.25, Seed: 3}.ResolveLinks(u)
	if err != nil {
		t.Fatal(err)
	}
	if want := 16; len(region) != want {
		t.Fatalf("region size %d, want %d", len(region), want)
	}
	// On a cycle, a BFS-grown link region is a contiguous arc: the
	// sorted link IDs form one run (possibly wrapping through 0).
	gaps := 0
	for i := 0; i < len(region); i++ {
		next := region[(i+1)%len(region)]
		if (region[i]+1)%len(u.EndA) != next && i != len(region)-1 {
			gaps++
		}
	}
	if len(region) > 1 {
		last, first := region[len(region)-1], region[0]
		if (last+1)%len(u.EndA) != first {
			gaps++
		}
	}
	if gaps > 1 {
		t.Fatalf("region %v has %d gaps on the cycle; want a contiguous arc", region, gaps)
	}
}

func TestResolveMidplanes(t *testing.T) {
	grid := torus.Shape{2, 2, 2, 4}
	cells, err := Spec{Model: ModelRandomMidplanes, Fraction: 0.25, Seed: 5}.ResolveMidplanes(grid)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8; len(cells) != want {
		t.Fatalf("fraction 0.25 of 32 cells picked %d, want %d", len(cells), want)
	}
	again, err := Spec{Model: ModelRandomMidplanes, Fraction: 0.25, Seed: 5}.ResolveMidplanes(grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Fatalf("same seed resolved %v then %v", cells, again)
	}

	if _, err := (Spec{Model: ModelMidplanes, Midplanes: []int{31}}).ResolveMidplanes(grid); err != nil {
		t.Fatalf("in-range midplane: %v", err)
	}
	if _, err := (Spec{Model: ModelMidplanes, Midplanes: []int{32}}).ResolveMidplanes(grid); err == nil {
		t.Fatal("midplane 32 of 32 should be out of range")
	}
}

func TestRegionMidplanesContiguous(t *testing.T) {
	grid := torus.Shape{4, 4, 4}
	region, err := Spec{Model: ModelCorrelatedRegion, Fraction: 0.2, Seed: 9}.ResolveMidplanes(grid)
	if err != nil {
		t.Fatal(err)
	}
	if want := 13; len(region) != want { // round(0.2 * 64)
		t.Fatalf("region size %d, want %d", len(region), want)
	}
	// The region must be connected on the midplane torus: BFS inside
	// the region from its first cell reaches every cell.
	tor, err := torus.New(grid...)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, c := range region {
		in[c] = true
	}
	seen := map[int]bool{region[0]: true}
	queue := []int{region[0]}
	var nbuf []int
	for qi := 0; qi < len(queue); qi++ {
		nbuf = tor.Neighbors(queue[qi], nbuf[:0])
		for _, w := range nbuf {
			if in[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	if len(seen) != len(region) {
		t.Fatalf("region reaches %d of its %d cells; not connected: %v", len(seen), len(region), region)
	}
}

func TestKeyStable(t *testing.T) {
	a, err := Spec{Model: ModelRandomLinks, Fraction: 0.1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Model: "RANDOM_LINKS", Fraction: 0.1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs key differently:\n%s\n%s", a.Key(), b.Key())
	}
}
