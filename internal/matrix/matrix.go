// Package matrix provides dense row-major float64 matrices with the
// operations the Strassen-Winograd implementation needs: views
// (submatrices without copying), element-wise add/subtract, classical
// multiplication, and comparison utilities. The layout separates
// logical dimensions from the storage stride so quadrant views are
// zero-copy — the property Strassen's recursion relies on.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major view: element (i, j) lives at
// data[i*stride + j]. A Matrix may be a view into a larger parent;
// mutations through a view are visible in the parent.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zeroed Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps row-major data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// View returns the r x c submatrix starting at (i0, j0), sharing
// storage with m.
func (m *Matrix) View(i0, j0, r, c int) *Matrix {
	if i0 < 0 || j0 < 0 || r < 0 || c < 0 || i0+r > m.Rows || j0+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) out of %dx%d", i0, j0, r, c, m.Rows, m.Cols))
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i0*m.Stride+j0:]}
}

// Quadrants splits an even-dimensioned square matrix into its four
// quadrant views (11, 12, 21, 22).
func (m *Matrix) Quadrants() (a11, a12, a21, a22 *Matrix) {
	if m.Rows != m.Cols || m.Rows%2 != 0 {
		panic(fmt.Sprintf("matrix: quadrants of %dx%d", m.Rows, m.Cols))
	}
	h := m.Rows / 2
	return m.View(0, 0, h, h), m.View(0, h, h, h), m.View(h, 0, h, h), m.View(h, h, h, h)
}

// Clone returns a compact copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Data[i*c.Stride:i*c.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return c
}

// CopyFrom copies src (same dimensions) into m.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy %dx%d from %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+src.Cols])
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// FillRandom fills with uniform values in [-1, 1).
func (m *Matrix) FillRandom(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
	}
}

// Add sets dst = a + b (all same dimensions; dst may alias a or b).
func Add(dst, a, b *Matrix) {
	checkSame(dst, a, b)
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		y := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range d {
			d[j] = x[j] + y[j]
		}
	}
}

// Sub sets dst = a - b.
func Sub(dst, a, b *Matrix) {
	checkSame(dst, a, b)
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		y := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range d {
			d[j] = x[j] - y[j]
		}
	}
}

// AddInto sets dst += a.
func AddInto(dst, a *Matrix) {
	checkSame(dst, a, a)
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		for j := range d {
			d[j] += x[j]
		}
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] *= s
		}
	}
}

func checkSame(ms ...*Matrix) {
	r, c := ms[0].Rows, ms[0].Cols
	for _, m := range ms[1:] {
		if m.Rows != r || m.Cols != c {
			panic(fmt.Sprintf("matrix: dimension mismatch %dx%d vs %dx%d", r, c, m.Rows, m.Cols))
		}
	}
}

// Mul sets dst = a * b with the classical algorithm (ikj loop order
// for cache-friendly row access). dst must not alias a or b.
func Mul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: mul %dx%d * %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		for j := range d {
			d[j] = 0
		}
		for k := 0; k < a.Cols; k++ {
			aik := a.Data[i*a.Stride+k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j, bv := range brow {
				d[j] += aik * bv
			}
		}
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSame(a, b)
	maxD := 0.0
	for i := 0; i < a.Rows; i++ {
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		y := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range x {
			if d := math.Abs(x[j] - y[j]); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// EqualWithin reports whether all elements agree within tol.
func EqualWithin(a, b *Matrix, tol float64) bool {
	return MaxAbsDiff(a, b) <= tol
}

// Flatten returns the matrix contents as a fresh compact row-major
// slice (for message payloads).
func (m *Matrix) Flatten() []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out[i*m.Cols:(i+1)*m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("matrix %dx%d", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%8.3f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
