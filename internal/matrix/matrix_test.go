package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	m := New(3, 4)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 || m.At(0, 0) != 0 {
		t.Error("set/get")
	}
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Errorf("shape %+v", m)
	}
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(1, 0) != 4 {
		t.Error("layout")
	}
	m.Set(0, 0, 9)
	if d[0] != 9 {
		t.Error("FromSlice should not copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad length should panic")
		}
	}()
	FromSlice(2, 2, d)
}

func TestViewSharesStorage(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 5)
	if m.At(1, 1) != 5 {
		t.Error("view not aliased")
	}
	if v.Stride != 4 {
		t.Errorf("view stride %d", v.Stride)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized view should panic")
		}
	}()
	m.View(2, 2, 3, 3)
}

func TestQuadrants(t *testing.T) {
	m := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	q11, q12, q21, q22 := m.Quadrants()
	if q11.At(0, 0) != 0 || q12.At(0, 0) != 2 || q21.At(0, 0) != 20 || q22.At(1, 1) != 33 {
		t.Error("quadrant layout")
	}
	defer func() {
		if recover() == nil {
			t.Error("odd quadrants should panic")
		}
	}()
	New(3, 3).Quadrants()
}

func TestCloneAndCopy(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 4)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Error("clone aliased")
	}
	n := New(2, 3)
	n.CopyFrom(m)
	if n.At(1, 2) != 4 {
		t.Error("copy")
	}
	// Copy from a strided view.
	big := New(4, 4)
	big.Fill(3)
	v := big.View(1, 1, 2, 3)
	n.CopyFrom(v)
	if n.At(0, 0) != 3 {
		t.Error("copy from view")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	d := New(2, 2)
	Add(d, a, b)
	if d.At(1, 1) != 44 {
		t.Error("add")
	}
	Sub(d, b, a)
	if d.At(0, 0) != 9 {
		t.Error("sub")
	}
	AddInto(d, a)
	if d.At(0, 0) != 10 {
		t.Error("addinto")
	}
	d.Scale(0.5)
	if d.At(0, 0) != 5 {
		t.Error("scale")
	}
	// Aliasing allowed for element-wise ops.
	Add(a, a, a)
	if a.At(1, 1) != 8 {
		t.Error("aliased add")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	Mul(c, a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !EqualWithin(c, want, 0) {
		t.Errorf("mul:\n%v", c)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5)
	a.FillRandom(rng)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := New(5, 5)
	Mul(c, a, id)
	if !EqualWithin(c, a, 1e-15) {
		t.Error("A*I != A")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(2, 2))
}

func TestMulAssociativityQuick(t *testing.T) {
	// (A*B)*C == A*(B*C) within tolerance, exercising views too.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a, b, c := New(n, n), New(n, n), New(n, n)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c.FillRandom(rng)
		ab, bc, l, r := New(n, n), New(n, n), New(n, n), New(n, n)
		Mul(ab, a, b)
		Mul(l, ab, c)
		Mul(bc, b, c)
		Mul(r, a, bc)
		return EqualWithin(l, r, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlatten(t *testing.T) {
	m := New(4, 4)
	m.Set(1, 1, 5)
	v := m.View(1, 1, 2, 2)
	f := v.Flatten()
	if len(f) != 4 || f[0] != 5 {
		t.Errorf("flatten %v", f)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{1, 2.5, 3})
	if MaxAbsDiff(a, b) != 0.5 {
		t.Error("maxabsdiff")
	}
}

func TestString(t *testing.T) {
	if s := New(2, 2).String(); s == "" {
		t.Error("small string")
	}
	if s := New(100, 100).String(); s != "matrix 100x100" {
		t.Errorf("big string %q", s)
	}
}

func BenchmarkClassicalMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y, z := New(128, 128), New(128, 128), New(128, 128)
	x.FillRandom(rng)
	y.FillRandom(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(z, x, y)
	}
}
