package contbound

import (
	"math"
	"math/rand"
	"testing"

	"netpart/internal/graph"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/topo"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// demandsOrFatal returns an unwrapper for generator results the test
// expects to succeed.
func demandsOrFatal(tb testing.TB) func(d []route.Demand, err error) []route.Demand {
	return func(d []route.Demand, err error) []route.Demand {
		if err != nil {
			tb.Helper()
			tb.Fatal(err)
		}
		return d
	}
}

func TestExactBoundSimpleCut(t *testing.T) {
	// Two cliques joined by one edge: all cross traffic through 1 link.
	g := graph.New(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(i+3, j+3, 1)
		}
	}
	g.AddEdge(2, 3, 1)
	demands := []route.Demand{{Src: 0, Dst: 4, Bytes: 100}, {Src: 1, Dst: 5, Bytes: 100}}
	res, err := ExactBound(g, demands, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 200 bytes over a 1-link cut at 10 B/s: >= 20 s.
	if res.Seconds != 20 {
		t.Errorf("bound = %v, want 20", res.Seconds)
	}
	if res.CutLinks != 1 || res.CrossingBytes != 200 {
		t.Errorf("witness %+v", res)
	}
}

func TestExactBoundDirectionality(t *testing.T) {
	// All demands one direction: inbound side of the cut binds equally.
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	res, err := ExactBound(g, []route.Demand{{Src: 0, Dst: 1, Bytes: 50}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds != 50 {
		t.Errorf("bound = %v", res.Seconds)
	}
}

func TestExactBoundErrors(t *testing.T) {
	g := graph.New(30)
	if _, err := ExactBound(g, nil, 1); err == nil {
		t.Error("30 vertices should exceed the exact search limit")
	}
	if _, err := ExactBound(graph.New(2), nil, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestSlabBoundMatchesExactOnSmallTorus(t *testing.T) {
	// On a ring, slabs are all the connected cuts, so the slab bound
	// should match the exact bound for ring-respecting demands.
	tor := torus.MustNew(8)
	g := topo.FromTorus(tor)
	r := route.NewRouter(tor)
	demands := demandsOrFatal(t)(workload.BisectionPairing(r, 64))
	exact, err := ExactBound(g, demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := SlabBound(tor, demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Seconds-slab.Seconds) > 1e-12 {
		t.Errorf("exact %v vs slab %v", exact.Seconds, slab.Seconds)
	}
	if slab.Seconds <= 0 {
		t.Error("slab bound should be positive")
	}
}

func TestSlabBoundNeverExceedsExact(t *testing.T) {
	// Slabs are a subset of all cuts, so slab <= exact, on random
	// demands.
	tor := torus.MustNew(4, 4)
	g := topo.FromTorus(tor)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		demands := demandsOrFatal(t)(workload.RandomPermutation(tor, 10+rng.Float64()*100, rng))
		exact, err := ExactBound(g, demands, 2)
		if err != nil {
			t.Fatal(err)
		}
		slab, err := SlabBound(tor, demands, 2)
		if err != nil {
			t.Fatal(err)
		}
		if slab.Seconds > exact.Seconds+1e-9 {
			t.Errorf("slab %v exceeds exact %v", slab.Seconds, exact.Seconds)
		}
	}
}

// TestBoundIsSoundAgainstSimulator: the routing-independent bound never
// exceeds the simulated completion time of the actual (DOR-routed,
// max-min fair) execution.
func TestBoundIsSoundAgainstSimulator(t *testing.T) {
	tor := torus.MustNew(8, 4, 2)
	r := route.NewRouter(tor)
	rng := rand.New(rand.NewSource(5))
	patterns := [][]route.Demand{
		demandsOrFatal(t)(workload.BisectionPairing(r, 1e9)),
		demandsOrFatal(t)(workload.RandomPermutation(tor, 1e9, rng)),
		demandsOrFatal(t)(workload.LongestDimShift(tor, 1e9)),
	}
	for pi, demands := range patterns {
		lb, err := SlabBound(tor, demands, 2e9)
		if err != nil {
			t.Fatal(err)
		}
		sim := netsim.New(r.NumLinks(), 2e9)
		for _, d := range demands {
			if d.Src == d.Dst {
				continue
			}
			sim.StartFlow(r.Route(d.Src, d.Dst, nil), d.Bytes, 0)
		}
		elapsed := sim.RunUntilIdle()
		if lb.Seconds > elapsed+1e-9 {
			t.Errorf("pattern %d: bound %v exceeds simulated %v", pi, lb.Seconds, elapsed)
		}
	}
}

// TestPairingRoutingGap: under positive tie-breaking DOR, the pairing
// workload runs exactly 2x above the routing-independent bound — the
// deterministic routing uses only one of the two cut planes.
func TestPairingRoutingGap(t *testing.T) {
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := route.NewRouter(tor)
	demands := demandsOrFatal(t)(workload.BisectionPairing(r, 2.1472e9))
	gap, err := RoutingGap(r, demands, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-2.0) > 1e-9 {
		t.Errorf("routing gap = %v, want 2.0", gap)
	}
}

func TestBisectionPairingBoundClosedForm(t *testing.T) {
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := route.NewRouter(tor)
	demands := demandsOrFatal(t)(workload.BisectionPairing(r, 1e9))
	slab, err := SlabBound(tor, demands, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	closed := BisectionPairingBound(tor, 1e9, 2e9)
	if math.Abs(slab.Seconds-closed) > 1e-9 {
		t.Errorf("slab %v vs closed form %v", slab.Seconds, closed)
	}
	// Degenerate torus.
	if b := BisectionPairingBound(torus.MustNew(2, 2), 8, 2); b <= 0 {
		t.Errorf("degenerate bound %v", b)
	}
}

// TestWorstSetBoundMatchesSSE: for a k-regular graph, the worst-set
// bound equals bytesPerNode / (k * cap * h_t), tying the module to the
// paper's §2 small-set expansion.
func TestWorstSetBoundMatchesSSE(t *testing.T) {
	tor := torus.MustNew(4, 4)
	g := topo.FromTorus(tor)
	k, ok := g.IsRegular()
	if !ok {
		t.Fatal("torus should be regular")
	}
	const bytesPerNode, cap = 1e6, 2e9
	for _, tt := range []int{1, 2, 4, 8} {
		bound, err := WorstSetBound(g, tt, bytesPerNode, cap)
		if err != nil {
			t.Fatal(err)
		}
		h, err := g.SmallSetExpansion(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := bytesPerNode / (k * cap * h)
		if math.Abs(bound.Seconds-want)/want > 1e-9 {
			t.Errorf("t=%d: bound %v, SSE identity %v", tt, bound.Seconds, want)
		}
	}
}

func TestWorstSetBoundErrors(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	if _, err := WorstSetBound(g, 0, 1, 1); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := WorstSetBound(g, 1, 1, 0); err == nil {
		t.Error("bad capacity should fail")
	}
	if _, err := WorstSetBound(g, 1, -1, 1); err == nil {
		t.Error("negative bytes should fail")
	}
}

func BenchmarkSlabBoundPairing(b *testing.B) {
	tor := torus.MustNew(16, 12, 8, 4, 2)
	r := route.NewRouter(tor)
	demands := demandsOrFatal(b)(workload.BisectionPairing(r, 2.1472e9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SlabBound(tor, demands, 2e9); err != nil {
			b.Fatal(err)
		}
	}
}
