// Package contbound computes lower bounds on the completion time of a
// communication pattern from cut capacities — the "inevitable
// contention" analysis of Ballard et al. [7] that the paper's §2
// builds on. For any vertex set S, all traffic from S to its
// complement must traverse the directed links leaving S, so
//
//	T >= bytes(S -> S̄) / (|E(S, S̄)| * linkCapacity)
//
// and symmetrically for inbound traffic. Maximizing over S gives a
// routing-independent lower bound: no routing scheme, adaptive or
// otherwise, can beat it. Three searches over S are provided:
//
//   - ExactBound enumerates every subset (small graphs; the oracle);
//   - SlabBound scans axis-aligned slabs of a torus (the cuts behind
//     the bisection analysis; linear time, any scale);
//   - WorstSetBound specializes to workloads where every node sends a
//     fixed volume out of any set containing it, connecting the bound
//     to the small-set expansion h_t of §2.
//
// The gap between these bounds and the routing-aware static model
// (route.PredictTransferTime) measures how much the *routing* — not
// the topology — leaves on the table; for the paper's pairing workload
// under deterministic DOR the gap is exactly 2x (ties all break to the
// positive direction, using half the cut's directed capacity).
package contbound

import (
	"fmt"
	"math"

	"netpart/internal/graph"
	"netpart/internal/route"
	"netpart/internal/torus"
)

// Result is a lower bound together with the witness cut.
type Result struct {
	// Seconds is the lower bound on completion time.
	Seconds float64
	// CrossingBytes is the traffic that must cross the witness cut (in
	// the binding direction).
	CrossingBytes float64
	// CutLinks is the directed capacity of the witness cut in links.
	CutLinks float64
	// Witness describes the cut (subset mask for ExactBound, slab
	// description for SlabBound).
	Witness string
}

// ExactBound maximizes the cut bound over every vertex subset of size
// 1..n-1 (small graphs only; the same enumeration limits as
// graph.MinPerimeter apply). linkCapacity is bytes/sec per direction;
// edge weights scale capacity.
func ExactBound(g *graph.Graph, demands []route.Demand, linkCapacity float64) (Result, error) {
	n := g.N()
	if n > 24 {
		return Result{}, fmt.Errorf("contbound: exact search on %d vertices is too large", n)
	}
	if linkCapacity <= 0 {
		return Result{}, fmt.Errorf("contbound: invalid capacity %v", linkCapacity)
	}
	best := Result{}
	set := make([]bool, n)
	// Enumerate subsets via binary counter (exclude empty and full).
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		for i := 0; i < n; i++ {
			set[i] = mask&(1<<uint(i)) != 0
		}
		cut := g.CutWeight(set)
		if cut == 0 {
			continue // disconnected side: any demand across is infeasible anyway
		}
		var out, in float64
		for _, d := range demands {
			switch {
			case set[d.Src] && !set[d.Dst]:
				out += d.Bytes
			case !set[d.Src] && set[d.Dst]:
				in += d.Bytes
			}
		}
		for _, bytes := range []float64{out, in} {
			if t := bytes / (cut * linkCapacity); t > best.Seconds {
				best = Result{
					Seconds:       t,
					CrossingBytes: bytes,
					CutLinks:      cut,
					Witness:       fmt.Sprintf("subset mask %b", mask),
				}
			}
		}
	}
	return best, nil
}

// SlabBound maximizes the cut bound over axis-aligned slabs of a
// torus: for every dimension d, offset o and width w < a_d, the set of
// vertices whose d-coordinate lies in the cyclic interval [o, o+w).
// Slabs include the bisecting cuts that determine the partition
// analysis; the search is O(D * a_d^2 * |demands|)-ish but evaluated
// in O((D + sum a_d^2) * |demands|) by bucketing demands per
// dimension.
func SlabBound(tor *torus.Torus, demands []route.Demand, linkCapacity float64) (Result, error) {
	if linkCapacity <= 0 {
		return Result{}, fmt.Errorf("contbound: invalid capacity %v", linkCapacity)
	}
	dims := tor.Dims()
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	best := Result{}
	for d, a := range dims {
		if a < 2 {
			continue
		}
		// crossing[i][j] = bytes from d-coordinate i to d-coordinate j.
		crossing := make([][]float64, a)
		for i := range crossing {
			crossing[i] = make([]float64, a)
		}
		for _, dm := range demands {
			si := dm.Src / strides[d] % a
			di := dm.Dst / strides[d] % a
			crossing[si][di] += dm.Bytes
		}
		colVol := float64(tor.NumVertices() / a) // vertices per hyperplane
		var planes float64                       // directed cut links per boundary
		if a == 2 {
			planes = 1 // single physical edge per column
		} else {
			planes = 2
		}
		for o := 0; o < a; o++ {
			for w := 1; w < a; w++ {
				inSlab := func(c int) bool {
					rel := c - o
					if rel < 0 {
						rel += a
					}
					return rel < w
				}
				var out, in float64
				for i := 0; i < a; i++ {
					for j := 0; j < a; j++ {
						if crossing[i][j] == 0 {
							continue
						}
						switch {
						case inSlab(i) && !inSlab(j):
							out += crossing[i][j]
						case !inSlab(i) && inSlab(j):
							in += crossing[i][j]
						}
					}
				}
				cut := planes * colVol
				for _, bytes := range []float64{out, in} {
					if t := bytes / (cut * linkCapacity); t > best.Seconds {
						best = Result{
							Seconds:       t,
							CrossingBytes: bytes,
							CutLinks:      cut,
							Witness:       fmt.Sprintf("slab dim %d [%d,%d)", d, o, (o+w)%a),
						}
					}
				}
			}
		}
	}
	return best, nil
}

// WorstSetBound bounds workloads in which every node must send
// bytesPerNode to a destination outside any candidate subset S
// containing it — an adversarial assumption that holds for
// all-to-all-like patterns and (for isoperimetric witness sets) for
// antipodal pairings. For a k-regular graph it equals
//
//	bytesPerNode / (k * linkCapacity * h_t)
//
// where h_t is the small-set expansion of §2 — the identity
// TestWorstSetBoundMatchesSSE verifies. Exact subset enumeration, so
// small graphs only.
func WorstSetBound(g *graph.Graph, t int, bytesPerNode, linkCapacity float64) (Result, error) {
	if linkCapacity <= 0 || bytesPerNode < 0 {
		return Result{}, fmt.Errorf("contbound: invalid parameters")
	}
	if t < 1 || t > g.N() {
		return Result{}, fmt.Errorf("contbound: subset bound %d out of range", t)
	}
	best := Result{}
	for size := 1; size <= t; size++ {
		minPer, set, err := g.MinPerimeter(size)
		if err != nil {
			return Result{}, err
		}
		if minPer == 0 {
			continue
		}
		if tm := bytesPerNode * float64(size) / (minPer * linkCapacity); tm > best.Seconds {
			best = Result{
				Seconds:       tm,
				CrossingBytes: bytesPerNode * float64(size),
				CutLinks:      minPer,
				Witness:       fmt.Sprintf("isoperimetric set of size %d: %v", size, maskString(set)),
			}
		}
	}
	return best, nil
}

func maskString(set []bool) string {
	out := ""
	for v, in := range set {
		if in {
			out += fmt.Sprintf("%d ", v)
		}
	}
	return out
}

// BisectionPairingBound is the closed-form slab bound for the
// furthest-node pairing workload on a torus: every node sends
// roundBytes across the bisecting slab of the longest dimension.
func BisectionPairingBound(tor *torus.Torus, roundBytes, linkCapacity float64) float64 {
	dims := tor.Dims()
	n := float64(tor.NumVertices())
	best := 0.0
	for _, a := range dims {
		if a < 3 {
			continue
		}
		// Half the nodes sit in the slab; all of their flows exit.
		out := n / 2 * roundBytes
		cut := 2 * n / float64(a)
		if t := out / (cut * linkCapacity); t > best {
			best = t
		}
	}
	if best == 0 && n >= 2 {
		// Degenerate tori (all dims <= 2): cross the single edge.
		best = n / 2 * roundBytes / (n / 2 * linkCapacity)
	}
	return best
}

// RoutingGap reports the ratio between the routing-aware static time
// (bottleneck link under DOR) and the routing-independent lower bound:
// how much the deterministic routing loses versus the best any routing
// could do. Returns +Inf when the lower bound is zero.
func RoutingGap(r *route.Router, demands []route.Demand, linkCapacity float64) (float64, error) {
	lb, err := SlabBound(r.Torus(), demands, linkCapacity)
	if err != nil {
		return 0, err
	}
	static := r.PredictTransferTime(demands, linkCapacity)
	if lb.Seconds == 0 {
		if static == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	return static / lb.Seconds, nil
}
