// Package topo constructs the network topologies discussed in §5 of
// Oltchik & Schwartz (SPAA 2020) as explicit graphs: tori (Blue
// Gene/Q, ToFu, Cray XK7), hypercubes (Pleiades), HyperX clique
// products, Dragonfly groups with weighted intra- and inter-group
// links (Cray XC), and 2D meshes. The explicit graphs feed the exact
// solvers in package graph, serving both as test oracles for the
// closed forms in package iso and as the substrate for small-scale
// small-set-expansion studies.
package topo

import (
	"fmt"

	"netpart/internal/graph"
	"netpart/internal/torus"
)

// FromTorus converts a torus to an explicit unit-weight graph.
func FromTorus(t *torus.Torus) *graph.Graph {
	g := graph.New(t.NumVertices())
	t.ForEachEdge(func(u, v int) {
		g.AddEdge(u, v, 1)
	})
	return g
}

// Hypercube returns the D-dimensional hypercube Q_D: vertices are
// bitstrings of length D, edges connect strings at Hamming distance 1.
// Equivalently the torus [2]^D under the simple-graph convention.
func Hypercube(D int) (*graph.Graph, error) {
	if D < 0 || D > 20 {
		return nil, fmt.Errorf("topo: hypercube dimension %d out of range [0, 20]", D)
	}
	n := 1 << uint(D)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < D; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.AddEdge(u, v, 1)
			}
		}
	}
	return g, nil
}

// CliqueProduct returns the Cartesian product of cliques
// K_{dims[0]} x ... x K_{dims[D-1]} — the HyperX topology [2] — with
// unit edge weights. Vertices are indexed row-major (last coordinate
// fastest), matching torus linearization.
func CliqueProduct(dims torus.Shape) (*graph.Graph, error) {
	return WeightedCliqueProduct(dims, uniformWeights(len(dims)))
}

// WeightedCliqueProduct is CliqueProduct with per-dimension edge
// weights, for HyperX variants and Dragonfly groups whose cliques have
// heterogeneous link capacities.
func WeightedCliqueProduct(dims torus.Shape, weights []float64) (*graph.Graph, error) {
	if err := dims.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != len(dims) {
		return nil, fmt.Errorf("topo: %d weights for rank-%d product", len(weights), len(dims))
	}
	n := dims.Volume()
	if n > 1<<20 {
		return nil, fmt.Errorf("topo: clique product with %d vertices too large", n)
	}
	strides := make([]int, len(dims))
	stride := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= dims[i]
	}
	g := graph.New(n)
	coord := make([]int, len(dims))
	for u := 0; u < n; u++ {
		for i := range dims {
			coord[i] = u / strides[i] % dims[i]
		}
		for i, a := range dims {
			// connect to all later vertices along dimension i
			for c := coord[i] + 1; c < a; c++ {
				v := u + (c-coord[i])*strides[i]
				g.AddEdge(u, v, weights[i])
			}
		}
	}
	return g, nil
}

// Mesh2D returns the rows x cols grid graph without wrap-around links
// (the 2-dimensional mesh of Ahlswede & Bezrukov [1]).
func Mesh2D(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: mesh %dx%d invalid", rows, cols)
	}
	g := graph.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				g.AddEdge(u, u+1, 1)
			}
			if r+1 < rows {
				g.AddEdge(u, u+cols, 1)
			}
		}
	}
	return g, nil
}

func uniformWeights(rank int) []float64 {
	w := make([]float64, rank)
	for i := range w {
		w[i] = 1
	}
	return w
}
