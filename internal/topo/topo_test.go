package topo

import (
	"math"
	"testing"

	"netpart/internal/torus"
)

func TestFromTorus(t *testing.T) {
	tor := torus.MustNew(4, 3, 2)
	g := FromTorus(tor)
	if g.N() != tor.NumVertices() {
		t.Errorf("vertex count %d != %d", g.N(), tor.NumVertices())
	}
	if g.NumEdges() != tor.NumEdges() {
		t.Errorf("edge count %d != %d", g.NumEdges(), tor.NumEdges())
	}
	if d, ok := g.IsRegular(); !ok || d != float64(tor.Degree()) {
		t.Errorf("regularity (%v, %v), want (%d, true)", d, ok, tor.Degree())
	}
	if !g.Connected() {
		t.Error("torus should be connected")
	}
}

func TestHypercube(t *testing.T) {
	for D := 0; D <= 6; D++ {
		g, err := Hypercube(D)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << uint(D)
		if g.N() != n {
			t.Errorf("Q%d: %d vertices", D, g.N())
		}
		if g.NumEdges() != D*n/2 {
			t.Errorf("Q%d: %d edges, want %d", D, g.NumEdges(), D*n/2)
		}
		if d, ok := g.IsRegular(); !ok || d != float64(D) {
			t.Errorf("Q%d: regularity (%v,%v)", D, d, ok)
		}
	}
	if _, err := Hypercube(-1); err == nil {
		t.Error("negative dimension should fail")
	}
	if _, err := Hypercube(25); err == nil {
		t.Error("oversized dimension should fail")
	}
}

func TestHypercubeEqualsTorus2PowD(t *testing.T) {
	// Q_D is the torus [2]^D under the simple-graph convention.
	for D := 1; D <= 5; D++ {
		dims := make([]int, D)
		for i := range dims {
			dims[i] = 2
		}
		tg := FromTorus(torus.MustNew(dims...))
		hg, _ := Hypercube(D)
		if tg.NumEdges() != hg.NumEdges() {
			t.Errorf("D=%d: torus %d edges, hypercube %d", D, tg.NumEdges(), hg.NumEdges())
		}
		for u := 0; u < tg.N(); u++ {
			for v := u + 1; v < tg.N(); v++ {
				if tg.HasEdge(u, v) != hg.HasEdge(u, v) {
					t.Fatalf("D=%d: edge (%d,%d) differs", D, u, v)
				}
			}
		}
	}
}

func TestCliqueProduct(t *testing.T) {
	dims := torus.Shape{4, 3}
	g, err := CliqueProduct(dims)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("N = %d", g.N())
	}
	// Each vertex: (4-1) + (3-1) = 5 neighbours.
	if d, ok := g.IsRegular(); !ok || d != 5 {
		t.Errorf("degree (%v,%v), want 5", d, ok)
	}
	// Edge count: dims0 cliques: 3 columns... per dimension i: (V/a_i) * C(a_i,2).
	want := 12/4*6 + 12/3*3
	if g.NumEdges() != want {
		t.Errorf("edges = %d, want %d", g.NumEdges(), want)
	}
	if _, err := CliqueProduct(torus.Shape{0}); err == nil {
		t.Error("invalid dims should fail")
	}
}

func TestWeightedCliqueProductWeights(t *testing.T) {
	dims := torus.Shape{3, 2}
	g, err := WeightedCliqueProduct(dims, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex (0,0)=0 and (0,1)=1 differ in dim 1: weight 3.
	if w := g.EdgeWeight(0, 1); w != 3 {
		t.Errorf("dim-1 edge weight = %v, want 3", w)
	}
	// Vertex (0,0)=0 and (1,0)=2 differ in dim 0: weight 1.
	if w := g.EdgeWeight(0, 2); w != 1 {
		t.Errorf("dim-0 edge weight = %v, want 1", w)
	}
	if _, err := WeightedCliqueProduct(dims, []float64{1}); err == nil {
		t.Error("weight count mismatch should fail")
	}
}

func TestMesh2D(t *testing.T) {
	g, err := Mesh2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("N = %d", g.N())
	}
	// Edges: horizontal 3*(4-1) + vertical (3-1)*4 = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Errorf("edges = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("mesh should be connected")
	}
	// Corner degree 2.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %v", g.Degree(0))
	}
	if _, err := Mesh2D(0, 3); err == nil {
		t.Error("invalid mesh should fail")
	}
}

func TestDragonflyArrangements(t *testing.T) {
	for _, arr := range []GlobalArrangement{Absolute, Relative, Circulant} {
		for groups := 2; groups <= 6; groups++ {
			cfg := AriesConfig(groups, torus.Shape{4, 3})
			cfg.Arrangement = arr
			g, err := Dragonfly(cfg)
			if err != nil {
				t.Fatalf("%v groups=%d: %v", arr, groups, err)
			}
			if g.N() != groups*12 {
				t.Errorf("%v groups=%d: N = %d", arr, groups, g.N())
			}
			if !g.Connected() {
				t.Errorf("%v groups=%d: not connected", arr, groups)
			}
			// Global links: exactly one per unordered group pair, weight 4,
			// so total global weight = C(groups,2)*4. Intra weight per
			// group: K4 edges with w=1: (12/4)*6 = 18... per dimension:
			// dim0 (K4,w1): 3*6=18; dim1 (K3,w3): 4*3*3=36. Total per
			// group 54.
			wantIntra := float64(groups) * (18 + 36)
			wantGlobal := float64(groups*(groups-1)/2) * 4
			if got := g.TotalWeight(); math.Abs(got-(wantIntra+wantGlobal)) > 1e-9 {
				t.Errorf("%v groups=%d: total weight %v, want %v", arr, groups, got, wantIntra+wantGlobal)
			}
		}
	}
}

func TestDragonflyErrors(t *testing.T) {
	if _, err := Dragonfly(AriesConfig(1, torus.Shape{4, 3})); err == nil {
		t.Error("single group should fail")
	}
	cfg := AriesConfig(20, torus.Shape{2, 2})
	if _, err := Dragonfly(cfg); err == nil {
		t.Error("insufficient global ports should fail")
	}
	cfg = AriesConfig(3, torus.Shape{4, 3})
	cfg.GlobalWeight = 0
	if _, err := Dragonfly(cfg); err == nil {
		t.Error("zero global weight should fail")
	}
}

func TestArrangementStrings(t *testing.T) {
	if Absolute.String() != "absolute" || Relative.String() != "relative" || Circulant.String() != "circulant" {
		t.Error("arrangement names")
	}
	if GlobalArrangement(9).String() == "" {
		t.Error("unknown arrangement should still stringify")
	}
}
