package topo

import (
	"math"
	"testing"

	"netpart/internal/iso"
	"netpart/internal/torus"
)

func TestOtherMachinesCatalog(t *testing.T) {
	machines := OtherMachines()
	if len(machines) != 4 {
		t.Fatalf("%d machines", len(machines))
	}
	for _, m := range machines {
		if m.NumNodes() < 2 {
			t.Errorf("%s: %d nodes", m.Name, m.NumNodes())
		}
		b, err := m.Bisection()
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if b <= 0 {
			t.Errorf("%s: bisection %v", m.Name, b)
		}
	}
}

func TestKComputerBisection(t *testing.T) {
	// 6D torus 24x18x17x2x3x2: N = 88128. Halving the longest (even)
	// dimension: 2N/24 = 7344. Dimensions 17 and 3 are odd, 2s count
	// single planes — exact search should still pick the 24-dim cut.
	k := OtherMachines()[0]
	b, err := k.Bisection()
	if err != nil {
		t.Fatal(err)
	}
	if b != 2*88128/24 {
		t.Errorf("K computer bisection = %v, want %v", b, 2*88128/24)
	}
}

func TestTitanWeightedBisection(t *testing.T) {
	// Titan 25x16x24 with Y at half weight. Volume 9600 (even).
	// Candidate cuts: halving X (len 25, odd -> not a clean half... the
	// exact search considers cuboids of volume 4800). Halving Z:
	// 2*4800/12... compare with the weighted search result directly
	// against a hand-computed slab: cuboid 25x16x12 has cut
	// 2*4800/12 = 800 weighted 1 (Z planes)... verify the search picks
	// something no worse than that slab.
	titan := OtherMachines()[1]
	b, err := titan.Bisection()
	if err != nil {
		t.Fatal(err)
	}
	slab, err := iso.WeightedCuboidPerimeter(titan.Dims, titan.Weights, torus.Shape{25, 16, 12})
	if err != nil {
		t.Fatal(err)
	}
	if b > slab+1e-9 {
		t.Errorf("weighted bisection %v worse than Z-slab %v", b, slab)
	}
	// The weighted optimum should exploit the cheap Y dimension:
	// cutting Y (weight 0.5) costs 0.5 * 2 * 4800/8 = 600 < 800.
	yCut, err := iso.WeightedCuboidPerimeter(titan.Dims, titan.Weights, torus.Shape{25, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-yCut) > 1e-9 {
		t.Errorf("bisection %v, expected the Y-cut %v", b, yCut)
	}
}

func TestPleiadesHypercube(t *testing.T) {
	p := OtherMachines()[2]
	if p.NumNodes() != 2048 {
		t.Errorf("nodes = %d", p.NumNodes())
	}
	b, err := p.Bisection()
	if err != nil {
		t.Fatal(err)
	}
	if b != 1024 {
		t.Errorf("Q11 bisection = %v, want 1024", b)
	}
}

func TestHyperXCatalogBisection(t *testing.T) {
	h := OtherMachines()[3]
	b, err := h.Bisection()
	if err != nil {
		t.Fatal(err)
	}
	// K16 x K8 x K8, V=1024: halving one K8: 4*4*(1024/8) = 2048;
	// halving K16: 8*8*64 = 4096. Lindsey picks 2048.
	if b != 2048 {
		t.Errorf("HyperX bisection = %v, want 2048", b)
	}
}

func TestOtherMachineUnknownTopology(t *testing.T) {
	m := OtherMachine{Name: "x", Topology: "fat-tree"}
	if _, err := m.Bisection(); err == nil {
		t.Error("unknown topology should fail")
	}
}
