package topo

import (
	"fmt"

	"netpart/internal/iso"
	"netpart/internal/torus"
)

// OtherMachine describes a non-Blue-Gene system from the paper's §5
// discussion, together with the isoperimetric treatment its topology
// admits.
type OtherMachine struct {
	Name     string
	Topology string
	// Dims is the torus/hypercube/product shape, when applicable.
	Dims torus.Shape
	// Weights are per-dimension link multiplicities (weighted
	// edge-isoperimetric problems, e.g. 3D tori with bundled links).
	Weights iso.Weights
	// Method names the §5 analysis route for this topology.
	Method string
}

// Bisection returns the machine's full-network bisection bandwidth in
// link units (weighted), using the §5-appropriate solver: cuboid-exact
// search for tori, Harper for hypercubes, Lindsey for clique products.
func (m OtherMachine) Bisection() (float64, error) {
	switch m.Topology {
	case "torus":
		vol := m.Dims.Volume()
		if vol%2 != 0 {
			// Odd vertex count: bisect as evenly as possible.
			_, w, err := iso.MinWeightedCuboidPerimeter(m.Dims, m.Weights, vol/2)
			return w, err
		}
		_, w, err := iso.MinWeightedCuboidPerimeter(m.Dims, m.Weights, vol/2)
		return w, err
	case "hypercube":
		b, err := iso.HypercubeBisection(len(m.Dims))
		return float64(b), err
	case "clique-product":
		b, err := iso.HyperXBisection(m.Dims)
		return float64(b), err
	default:
		return 0, fmt.Errorf("topo: no bisection method for topology %q", m.Topology)
	}
}

// NumNodes returns the vertex count.
func (m OtherMachine) NumNodes() int {
	if m.Topology == "hypercube" {
		return 1 << uint(len(m.Dims))
	}
	return m.Dims.Volume()
}

// OtherMachines returns the §5 systems: the K computer's ToFu
// interconnect (modeled at its 6D torus/mesh scale), Titan's Gemini 3D
// torus (bundled links make the edge-isoperimetric problem weighted),
// Pleiades' hypercube, and a published HyperX configuration. Dragonfly
// (Cray XC) needs the group-level model of Dragonfly/AriesConfig
// rather than a single product shape.
func OtherMachines() []OtherMachine {
	return []OtherMachine{
		{
			// K computer: ToFu 6D torus, 12x axes (Ajima et al. [3]).
			// The full system is 24x18x17 nodes of 2x3x2 groups; we
			// model the torus dimensions directly.
			Name:     "K computer (ToFu)",
			Topology: "torus",
			Dims:     torus.Shape{24, 18, 17, 2, 3, 2},
			Weights:  iso.Uniform(6),
			Method:   "Theorem 3.1 / exact cuboid search (high-dimensional torus, like BGQ)",
		},
		{
			// Titan: Cray XK7 Gemini 3D torus 25x16x24; the Y dimension
			// carries half the link bandwidth of X/Z in Gemini, giving a
			// weighted problem (paper §5: "may require ... weighted
			// edges").
			Name:     "Titan (Cray XK7)",
			Topology: "torus",
			Dims:     torus.Shape{25, 16, 24},
			Weights:  iso.Weights{1, 0.5, 1},
			Method:   "weighted cuboid search (low-dimensional torus, bundled links)",
		},
		{
			// Pleiades: 11D hypercube of racks (paper §5: Harper [16]
			// solves it directly).
			Name:     "Pleiades (hypercube)",
			Topology: "hypercube",
			Dims:     torus.Shape{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
			Weights:  iso.Uniform(11),
			Method:   "Harper's theorem (exact for all subset sizes)",
		},
		{
			// A regular HyperX in the style of Ahn et al. [2].
			Name:     "HyperX 16x8x8",
			Topology: "clique-product",
			Dims:     torus.Shape{16, 8, 8},
			Weights:  iso.Uniform(3),
			Method:   "Lindsey's theorem (exact for all subset sizes)",
		},
	}
}
