package topo

import (
	"fmt"

	"netpart/internal/graph"
	"netpart/internal/torus"
)

// GlobalArrangement selects how Dragonfly groups are wired to each
// other. Hastings et al. [17] compare several schemes; we implement
// the two standard ones (the third scheme in [17] is a circulant
// variant of Relative).
type GlobalArrangement int

const (
	// Absolute: global port p of every group connects to group p
	// (skipping the group itself). Port p therefore always lands in
	// the same destination group regardless of source.
	Absolute GlobalArrangement = iota
	// Relative: global port p of group i connects to group
	// (i + p + 1) mod g.
	Relative
	// Circulant: global port p of group i connects to group
	// i + (-1)^p * ceil((p+1)/2) mod g, alternating sides.
	Circulant
)

func (a GlobalArrangement) String() string {
	switch a {
	case Absolute:
		return "absolute"
	case Relative:
		return "relative"
	case Circulant:
		return "circulant"
	default:
		return fmt.Sprintf("arrangement(%d)", int(a))
	}
}

// DragonflyConfig describes a Dragonfly network in the style of the
// Cray XC Aries implementation (paper §5): each group is a clique
// product GroupDims (K16 x K6 for Aries, with the K6 "black" links
// carrying weight 3 relative to the K16 "green" links), and groups are
// joined by global "blue" links of weight 4. Each router provides
// GlobalPortsPerRouter global ports.
type DragonflyConfig struct {
	Groups               int
	GroupDims            torus.Shape // clique product shape within a group
	IntraWeights         []float64   // one per GroupDims entry
	GlobalWeight         float64
	GlobalPortsPerRouter int
	Arrangement          GlobalArrangement
}

// AriesConfig returns the Cray XC parameters of paper §5 scaled down
// to the given number of groups and group shape. The full-size Aries
// group is K16 x K6 (96 routers); tests use smaller shapes.
func AriesConfig(groups int, groupDims torus.Shape) DragonflyConfig {
	w := make([]float64, len(groupDims))
	for i := range w {
		w[i] = 1
	}
	if len(w) >= 2 {
		// The smaller clique's links have triple capacity on Aries.
		w[len(w)-1] = 3
	}
	return DragonflyConfig{
		Groups:               groups,
		GroupDims:            groupDims,
		IntraWeights:         w,
		GlobalWeight:         4,
		GlobalPortsPerRouter: 1,
		Arrangement:          Relative,
	}
}

// Dragonfly builds the explicit weighted graph for a Dragonfly
// configuration. Router r of group i is vertex i*groupSize + r.
// Global ports are assigned to routers round-robin: port p lives on
// router p mod groupSize. If the configuration provides fewer global
// ports than needed to reach every other group, an error is returned.
func Dragonfly(cfg DragonflyConfig) (*graph.Graph, error) {
	if cfg.Groups < 2 {
		return nil, fmt.Errorf("topo: dragonfly needs >= 2 groups, have %d", cfg.Groups)
	}
	if err := cfg.GroupDims.Validate(); err != nil {
		return nil, err
	}
	gs := cfg.GroupDims.Volume()
	ports := gs * cfg.GlobalPortsPerRouter
	if ports < cfg.Groups-1 {
		return nil, fmt.Errorf("topo: %d global ports per group cannot reach %d peer groups", ports, cfg.Groups-1)
	}
	if cfg.GlobalWeight <= 0 {
		return nil, fmt.Errorf("topo: non-positive global weight %v", cfg.GlobalWeight)
	}
	n := cfg.Groups * gs
	if n > 1<<18 {
		return nil, fmt.Errorf("topo: dragonfly with %d routers too large", n)
	}
	g := graph.New(n)

	// Intra-group clique-product links.
	proto, err := WeightedCliqueProduct(cfg.GroupDims, cfg.IntraWeights)
	if err != nil {
		return nil, err
	}
	for gi := 0; gi < cfg.Groups; gi++ {
		base := gi * gs
		for u := 0; u < gs; u++ {
			proto.Neighbors(u, func(v int, w float64) {
				if u < v {
					g.AddEdge(base+u, base+v, w)
				}
			})
		}
	}

	// Global links. Port p of group i targets a peer group per the
	// arrangement; the link is added once (from the smaller group id).
	for gi := 0; gi < cfg.Groups; gi++ {
		for p := 0; p < cfg.Groups-1; p++ {
			gj := globalPeer(cfg.Arrangement, gi, p, cfg.Groups)
			if gj == gi || gj < 0 || gj >= cfg.Groups {
				return nil, fmt.Errorf("topo: arrangement %v port %d of group %d targets invalid group %d", cfg.Arrangement, p, gi, gj)
			}
			if gj < gi {
				continue // counted from the other side
			}
			u := gi*gs + p%gs
			v := gj*gs + reversePort(cfg.Arrangement, gi, gj, cfg.Groups)%gs
			g.AddEdge(u, v, cfg.GlobalWeight)
		}
	}
	return g, nil
}

// globalPeer returns the group that port p of group gi connects to.
func globalPeer(a GlobalArrangement, gi, p, groups int) int {
	switch a {
	case Absolute:
		// Port p connects to absolute group p, skipping gi itself.
		if p >= gi {
			return p + 1
		}
		return p
	case Relative:
		return (gi + p + 1) % groups
	case Circulant:
		step := (p + 2) / 2
		if p%2 == 0 {
			return (gi + step) % groups
		}
		return ((gi-step)%groups + groups) % groups
	default:
		return -1
	}
}

// reversePort finds the port of group gj that connects back to gi, so
// both endpoints of a global link are well-defined routers.
func reversePort(a GlobalArrangement, gi, gj, groups int) int {
	for p := 0; p < groups-1; p++ {
		if globalPeer(a, gj, p, groups) == gi {
			return p
		}
	}
	return 0
}
