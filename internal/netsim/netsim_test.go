package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleFlow(t *testing.T) {
	s := New(4, 100) // 100 B/s links
	id := s.StartFlow([]int{0, 1}, 1000, 0)
	if s.ActiveFlows() != 1 {
		t.Fatal("flow not active")
	}
	if r, ok := s.FlowRate(id); !ok || r != 100 {
		t.Errorf("rate = %v, %v; want 100", r, ok)
	}
	elapsed := s.RunUntilIdle()
	if math.Abs(elapsed-10) > 1e-9 {
		t.Errorf("elapsed = %v, want 10", elapsed)
	}
	if s.ActiveFlows() != 0 {
		t.Error("flow still active")
	}
	st := s.Stats()
	if st.FlowsCompleted != 1 || st.TotalBytes != 1000 {
		t.Errorf("stats %+v", st)
	}
	if s.LinkBytes(0) != 1000 || s.LinkBytes(1) != 1000 || s.LinkBytes(2) != 0 {
		t.Errorf("link bytes %v %v %v", s.LinkBytes(0), s.LinkBytes(1), s.LinkBytes(2))
	}
}

func TestFairSharing(t *testing.T) {
	// Two flows share link 0: each gets 50 B/s. One also uses link 1
	// alone (not bottleneck).
	s := New(2, 100)
	a := s.StartFlow([]int{0}, 500, 0)
	b := s.StartFlow([]int{0, 1}, 500, 0)
	ra, _ := s.FlowRate(a)
	rb, _ := s.FlowRate(b)
	if ra != 50 || rb != 50 {
		t.Errorf("rates %v %v, want 50 50", ra, rb)
	}
	// Both complete at t=10 together.
	done, ok := s.Step()
	if !ok || len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	if math.Abs(s.Now()-10) > 1e-9 {
		t.Errorf("completion at %v, want 10", s.Now())
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Classic max-min instance: flows A (link0), B (link0+link1),
	// C (link1). Link0 cap 100, link1 cap 300.
	// Progressive filling: link0 share 50 freezes A and B; then C gets
	// 300-50=250.
	caps := []float64{100, 300}
	s := NewWithCapacities(caps)
	a := s.StartFlow([]int{0}, 1e9, 0)
	b := s.StartFlow([]int{0, 1}, 1e9, 0)
	c := s.StartFlow([]int{1}, 1e9, 0)
	ra, _ := s.FlowRate(a)
	rb, _ := s.FlowRate(b)
	rc, _ := s.FlowRate(c)
	if ra != 50 || rb != 50 || rc != 250 {
		t.Errorf("rates %v %v %v, want 50 50 250", ra, rb, rc)
	}
}

// TestMaxMinProperties: property-based check of max-min fairness:
// no link oversubscribed; every flow bottlenecked (it has a saturated
// link where it gets a maximal rate among the link's flows).
func TestMaxMinProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLinks := 2 + rng.Intn(8)
		caps := make([]float64, nLinks)
		for i := range caps {
			caps[i] = 10 + 100*rng.Float64()
		}
		s := NewWithCapacities(caps)
		nFlows := 1 + rng.Intn(12)
		ids := make([]FlowID, 0, nFlows)
		routes := make(map[FlowID][]int)
		for i := 0; i < nFlows; i++ {
			nl := 1 + rng.Intn(nLinks)
			perm := rng.Perm(nLinks)[:nl]
			id := s.StartFlow(perm, 1e9, 0)
			ids = append(ids, id)
			routes[id] = perm
		}
		// Gather rates.
		rates := make(map[FlowID]float64)
		for _, id := range ids {
			r, ok := s.FlowRate(id)
			if !ok {
				return false
			}
			rates[id] = r
		}
		// Link loads.
		load := make([]float64, nLinks)
		linkRates := make([][]float64, nLinks)
		for id, route := range routes {
			for _, l := range route {
				load[l] += rates[id]
				linkRates[l] = append(linkRates[l], rates[id])
			}
		}
		for l := range caps {
			if load[l] > caps[l]*(1+1e-9) {
				return false // oversubscribed
			}
		}
		// Bottleneck property.
		for id, route := range routes {
			bottlenecked := false
			for _, l := range route {
				saturated := load[l] >= caps[l]*(1-1e-9)
				if !saturated {
					continue
				}
				maximal := true
				for _, r := range linkRates[l] {
					if r > rates[id]*(1+1e-9) {
						maximal = false
						break
					}
				}
				if maximal {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLatencyOnlyFlow(t *testing.T) {
	s := New(1, 100)
	s.StartFlow(nil, 0, 2e-6) // intra-node copy
	elapsed := s.RunUntilIdle()
	if math.Abs(elapsed-2e-6) > 1e-12 {
		t.Errorf("elapsed = %v, want 2e-6", elapsed)
	}
}

func TestLatencyDominatesSmallMessage(t *testing.T) {
	s := New(2, 1e9)
	s.StartFlow([]int{0, 1}, 8, 5e-6) // 8 bytes: transfer 8ns < latency 5us
	elapsed := s.RunUntilIdle()
	if math.Abs(elapsed-5e-6) > 1e-12 {
		t.Errorf("elapsed = %v, want 5e-6", elapsed)
	}
}

func TestStaggeredCompletion(t *testing.T) {
	// Flow A: 100 bytes on link0. Flow B: 200 bytes on link0.
	// Shared until A finishes at t=2 (50 B/s each); then B alone at
	// 100 B/s for remaining 100 bytes: total 3.
	s := New(1, 100)
	a := s.StartFlow([]int{0}, 100, 0)
	b := s.StartFlow([]int{0}, 200, 0)
	done, _ := s.Step()
	if len(done) != 1 || done[0] != a {
		t.Fatalf("first completion %v, want [%v]", done, a)
	}
	if math.Abs(s.Now()-2) > 1e-9 {
		t.Errorf("first completion at %v, want 2", s.Now())
	}
	if r, _ := s.FlowRate(b); math.Abs(r-100) > 1e-9 {
		t.Errorf("B rate after A done = %v, want 100", r)
	}
	done, _ = s.Step()
	if len(done) != 1 || done[0] != b {
		t.Fatalf("second completion %v", done)
	}
	if math.Abs(s.Now()-3) > 1e-9 {
		t.Errorf("second completion at %v, want 3", s.Now())
	}
}

func TestMidFlightInjection(t *testing.T) {
	s := New(1, 100)
	a := s.StartFlow([]int{0}, 200, 0)
	// Advance 1s: A has 100 left.
	if done := s.Advance(1); len(done) != 0 {
		t.Fatalf("unexpected completion %v", done)
	}
	b := s.StartFlow([]int{0}, 100, 0)
	// Now both at 50 B/s: A finishes at t=3, B at t=3. Together.
	done, _ := s.Step()
	if len(done) != 2 {
		t.Fatalf("expected both to complete, got %v", done)
	}
	if math.Abs(s.Now()-3) > 1e-9 {
		t.Errorf("completions at %v, want 3", s.Now())
	}
	_ = a
	_ = b
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(8, 2e9)
		var times []float64
		for i := 0; i < 5; i++ {
			s.StartFlow([]int{i % 8, (i + 3) % 8}, float64(1e6*(i+1)), 1e-6)
		}
		for {
			done, ok := s.Step()
			if !ok {
				break
			}
			for range done {
				times = append(times, s.Now())
			}
		}
		return times
	}
	a := run()
	b := run()
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("completion %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	s := New(2, 100)
	for name, fn := range map[string]func(){
		"neg bytes":    func() { s.StartFlow([]int{0}, -1, 0) },
		"neg latency":  func() { s.StartFlow([]int{0}, 1, -1) },
		"bad link":     func() { s.StartFlow([]int{5}, 1, 0) },
		"dup link":     func() { s.StartFlow([]int{0, 0}, 1, 0) },
		"neg advance":  func() { s.Advance(-1) },
		"neg capacity": func() { New(1, -5) },
		"neg links":    func() { New(-1, 5) },
		"link range":   func() { s.LinkBytes(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBisectionPairingScenario(t *testing.T) {
	// 8 flows over one bottleneck link of 2 GB/s, each 2.147 GB:
	// finish together at 8 * 2.147e9 / 2e9 = 8.588 s — the per-round
	// time behind Figure 3's current-geometry bars.
	s := New(1, 2e9)
	for i := 0; i < 8; i++ {
		s.StartFlow([]int{0}, 2.147e9, 0)
	}
	elapsed := s.RunUntilIdle()
	want := 8 * 2.147e9 / 2e9
	if math.Abs(elapsed-want) > 1e-6 {
		t.Errorf("elapsed %v, want %v", elapsed, want)
	}
}

func TestRemovingFlowNeverHurts(t *testing.T) {
	// Monotonicity: with one fewer flow, remaining flows' rates do not
	// decrease.
	build := func(skip int) map[int]float64 {
		s := New(3, 100)
		routes := [][]int{{0}, {0, 1}, {1, 2}, {2}, {0, 2}}
		rates := make(map[int]float64)
		ids := make(map[int]FlowID)
		for i, rt := range routes {
			if i == skip {
				continue
			}
			ids[i] = s.StartFlow(rt, 1e9, 0)
		}
		for i, id := range ids {
			r, _ := s.FlowRate(id)
			rates[i] = r
		}
		return rates
	}
	full := build(-1)
	for skip := 0; skip < 5; skip++ {
		reduced := build(skip)
		for i, r := range reduced {
			if r < full[i]*(1-1e-9) {
				t.Errorf("removing flow %d decreased flow %d rate: %v -> %v", skip, i, full[i], r)
			}
		}
	}
}

func BenchmarkRecomputeRatesPairing(b *testing.B) {
	// Scale of a 4-midplane pairing round: 2048 flows, ~21 links each.
	nLinks := 2048 * 5 * 2
	routes := make([][]int, 2048)
	rng := rand.New(rand.NewSource(1))
	for i := range routes {
		r := make([]int, 21)
		for j := range r {
			r[j] = rng.Intn(nLinks)
		}
		seen := map[int]bool{}
		out := r[:0]
		for _, l := range r {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
		routes[i] = out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(nLinks, 2e9)
		for _, rt := range routes {
			s.StartFlow(rt, 1e6, 0)
		}
		if _, ok := s.TimeToNextCompletion(); !ok {
			b.Fatal("no flows")
		}
	}
}
