package netsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// referenceRates is the pre-arena, map-based max-min fair
// implementation this package used before the dense rewrite, kept
// verbatim in spirit as the oracle for the invariant tests: rebuild a
// map link→flows index, sort the active links, and progressively fill.
// routes[i] is flow i's link list; the result is flow i's fair rate.
func referenceRates(caps []float64, routes [][]int) []float64 {
	rates := make([]float64, len(routes))
	linkFlows := make(map[int][]int)
	unfrozen := 0
	for i, links := range routes {
		if len(links) == 0 {
			rates[i] = math.Inf(1)
			continue
		}
		rates[i] = -1
		unfrozen++
		for _, l := range links {
			linkFlows[l] = append(linkFlows[l], i)
		}
	}
	if unfrozen == 0 {
		return rates
	}
	activeLinks := make([]int, 0, len(linkFlows))
	for l := range linkFlows {
		activeLinks = append(activeLinks, l)
	}
	sort.Ints(activeLinks)
	remCap := make(map[int]float64, len(activeLinks))
	remCnt := make(map[int]int, len(activeLinks))
	for _, l := range activeLinks {
		remCap[l] = caps[l]
		remCnt[l] = len(linkFlows[l])
	}
	for unfrozen > 0 {
		share := math.Inf(1)
		for _, l := range activeLinks {
			if remCnt[l] <= 0 {
				continue
			}
			if sh := remCap[l] / float64(remCnt[l]); sh < share {
				share = sh
			}
		}
		if math.IsInf(share, 1) {
			panic("reference: no bottleneck")
		}
		frozeAny := false
		for _, l := range activeLinks {
			if remCnt[l] <= 0 {
				continue
			}
			if remCap[l]/float64(remCnt[l]) > share*(1+1e-12) {
				continue
			}
			for _, fi := range linkFlows[l] {
				if rates[fi] >= 0 {
					continue
				}
				rates[fi] = share
				unfrozen--
				frozeAny = true
				for _, fl := range routes[fi] {
					remCap[fl] -= share
					if remCap[fl] < 0 {
						remCap[fl] = 0
					}
					remCnt[fl]--
				}
			}
		}
		if !frozeAny {
			panic("reference: stalled")
		}
	}
	return rates
}

// randomInstance builds a random capacity vector and duplicate-free
// random routes.
func randomInstance(rng *rand.Rand) (caps []float64, routes [][]int) {
	nLinks := 2 + rng.Intn(30)
	caps = make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1 + 1000*rng.Float64()
	}
	nFlows := 1 + rng.Intn(40)
	routes = make([][]int, nFlows)
	for i := range routes {
		nl := rng.Intn(nLinks + 1) // 0 links = latency-only flow
		routes[i] = rng.Perm(nLinks)[:nl]
	}
	return caps, routes
}

// TestRatesMatchReference verifies that the dense incremental engine
// assigns the same max-min fair rates as the old map-based
// implementation on randomized flow sets. Rates may differ by
// floating-point noise only (the filling order differs: the reference
// scans sorted link IDs, the dense engine scans discovery order).
func TestRatesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		caps, routes := randomInstance(rng)
		s := NewWithCapacities(caps)
		ids := make([]FlowID, len(routes))
		for i, links := range routes {
			ids[i] = s.StartFlow(links, 1e9, 0)
		}
		want := referenceRates(caps, routes)
		for i, id := range ids {
			got, ok := s.FlowRate(id)
			if !ok {
				t.Fatalf("trial %d: flow %d missing", trial, i)
			}
			if math.IsInf(want[i], 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("trial %d: flow %d rate %v, want +Inf", trial, i, got)
				}
				continue
			}
			if math.Abs(got-want[i]) > 1e-9*math.Max(1, want[i]) {
				t.Fatalf("trial %d: flow %d rate %v, want %v (routes %v)",
					trial, i, got, want[i], routes)
			}
		}
	}
}

// checkCapacityInvariant asserts that no link's summed flow rates
// exceed its capacity (within 1e-9 relative).
func checkCapacityInvariant(t *testing.T, s *Sim, caps []float64, ids []FlowID, routes [][]int) {
	t.Helper()
	load := make([]float64, len(caps))
	for i, id := range ids {
		r, ok := s.FlowRate(id)
		if !ok {
			continue
		}
		if math.IsInf(r, 1) {
			continue
		}
		for _, l := range routes[i] {
			load[l] += r
		}
	}
	for l, v := range load {
		if v > caps[l]*(1+1e-9) {
			t.Fatalf("link %d oversubscribed: load %v > cap %v", l, v, caps[l])
		}
	}
}

// TestNoLinkOversubscribedAfterRecompute drives randomized workloads
// through start/advance/complete cycles and asserts after every rate
// recomputation that no link carries more than its capacity.
func TestNoLinkOversubscribedAfterRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		caps, routes := randomInstance(rng)
		s := NewWithCapacities(caps)
		ids := make([]FlowID, len(routes))
		for i, links := range routes {
			ids[i] = s.StartFlow(links, 1e6*(1+rng.Float64()), 0)
		}
		checkCapacityInvariant(t, s, caps, ids, routes)
		// Drain in steps, injecting a few extra flows mid-flight; every
		// Step triggers a recomputation.
		extra := 0
		for {
			if _, ok := s.Step(); !ok {
				break
			}
			if extra < 3 && s.ActiveFlows() > 0 {
				extra++
				nl := rng.Intn(len(caps) + 1)
				links := rng.Perm(len(caps))[:nl]
				ids = append(ids, s.StartFlow(links, 1e6, 0))
				routes = append(routes, links)
			}
			checkCapacityInvariant(t, s, caps, ids, routes)
		}
		if s.ActiveFlows() != 0 {
			t.Fatalf("trial %d: %d flows stuck", trial, s.ActiveFlows())
		}
	}
}

// TestSlotReuseAndIDWindow exercises arena slot recycling and the
// sliding FlowID window: IDs stay monotonic and stale IDs stay dead
// across drain/refill cycles.
func TestSlotReuseAndIDWindow(t *testing.T) {
	s := New(4, 100)
	var lastID FlowID = -1
	for round := 0; round < 5; round++ {
		ids := make([]FlowID, 0, 8)
		for i := 0; i < 8; i++ {
			id := s.StartFlow([]int{i % 4}, 100, 0)
			if id <= lastID {
				t.Fatalf("round %d: id %d not monotonic after %d", round, id, lastID)
			}
			lastID = id
			ids = append(ids, id)
		}
		s.RunUntilIdle()
		for _, id := range ids {
			if _, ok := s.FlowRate(id); ok {
				t.Fatalf("round %d: completed flow %d still queryable", round, id)
			}
		}
	}
	if got := s.Stats().FlowsCompleted; got != 40 {
		t.Fatalf("FlowsCompleted = %d, want 40", got)
	}
}

// TestStaggeredPartialCompletion checks the sliding window when only a
// prefix (and a non-prefix subset) of flows completes.
func TestStaggeredPartialCompletion(t *testing.T) {
	s := New(2, 100)
	a := s.StartFlow([]int{0}, 100, 0) // alone on link 0: done at t=1
	b := s.StartFlow([]int{1}, 300, 0) // alone on link 1: done at t=3
	c := s.StartFlow([]int{0}, 100, 0) // shares link 0 after a...
	_ = c
	done, _ := s.Step()
	if len(done) != 2 || done[0] != a { // a and c tie at t=2 (50 B/s each)
		// a,c share link 0 at 50 B/s: both complete at t=2.
		t.Fatalf("first batch %v", done)
	}
	if r, ok := s.FlowRate(b); !ok || r != 100 {
		t.Fatalf("b rate %v %v, want 100", r, ok)
	}
	done, _ = s.Step()
	if len(done) != 1 || done[0] != b {
		t.Fatalf("second batch %v", done)
	}
	if _, ok := s.FlowRate(a); ok {
		t.Fatal("a still queryable")
	}
}
