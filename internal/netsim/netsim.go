// Package netsim is a discrete-event, flow-level network simulator
// with max-min fair bandwidth sharing. It models long-lived transfers
// (flows) over a set of directed links with fixed capacities: at every
// instant each flow receives its max-min fair rate (computed by
// progressive filling), and the simulation advances from one flow
// completion to the next.
//
// Flow-level simulation is the right granularity for the paper's
// experiments, which are bandwidth-bound with hundred-megabyte
// messages: the quantity that determines completion time is exactly
// "how many flows share the bottleneck link", the same static model
// the paper's §4.1 predictions use, but resolved dynamically so that
// staggered starts and multi-bottleneck cascades are simulated rather
// than assumed.
//
// # Architecture
//
// The simulator core is built around dense, index-addressed state;
// there are no maps on any per-flow or per-link hot path:
//
//   - Flows live in a free-list-backed arena ([]flow). Public FlowIDs
//     are dense and monotonically increasing; a sliding id→slot window
//     translates them to arena slots in O(1) and is compacted when the
//     simulator drains.
//   - The link→flows index is a CSR layout (flat offset/count arrays
//     into one shared slot slice), rebuilt in a single O(total route
//     length) pass per rate epoch — an epoch being any run of
//     starts/completions between rate recomputations — and scoped to
//     the links actually touched by active flows, never to NumLinks.
//   - Progressive filling keeps per-link remaining capacity and
//     unfrozen-flow counts in flat []float64/[]int32 arrays indexed by
//     link ID. No sorting is needed anywhere: iteration follows arena
//     slot order, which is deterministic (slots are assigned by
//     StartFlow order and free-list recycling, both repeatable) though
//     not FlowID order once slots recycle.
//   - Completion cohorts are batched: Advance detects every flow whose
//     completion lands in the interval in one pass, so the symmetric
//     workloads of the paper (§4.1 bisection pairing, where thousands
//     of identical-rate flows finish together) cost one event and one
//     rate recomputation per cohort rather than one per flow.
//
// The previous map-based implementation (retained as the reference
// oracle in reference_test.go) rebuilt map[int][]*flow indexes and
// re-sorted link lists on every recomputation; the dense core is an
// order of magnitude faster and allocation-free in steady state.
package netsim

import (
	"fmt"
	"math"
	"slices"
)

// FlowID identifies an active or completed flow. IDs are assigned
// densely in StartFlow order and are never reused.
type FlowID int

// flow is one arena slot. The links slice's backing array is retained
// and reused when the slot is recycled, so steady-state flow injection
// does not allocate.
type flow struct {
	id        FlowID
	links     []int32 // route (directed link IDs); immutable while live
	total     float64 // bytes at injection
	remaining float64 // bytes
	rate      float64 // bytes/sec, set by recomputeRates
	minDone   float64 // absolute time before which the flow cannot complete (latency)
	live      bool
}

// Sim is the simulator state. Create with New; not safe for concurrent
// use (the mpi engine serializes access, and the experiment drivers
// give each worker its own Sim).
type Sim struct {
	capacity []float64 // per directed link, bytes/sec
	now      float64

	// Flow arena: dense slots with free-list reuse.
	flows     []flow
	freeSlots []int32
	numLive   int

	// FlowID translation: id2slot[id-idBase] is the arena slot of id,
	// or -1 once completed. The window slides forward as old flows
	// complete and resets entirely when the simulator drains.
	nextID  FlowID
	idBase  FlowID
	id2slot []int32

	ratesDirty bool

	// Duplicate-link detection scratch for StartFlow: a link is a
	// duplicate if its mark equals the current epoch. Replaces a
	// per-call map allocation with two array reads.
	dupMark  []uint64
	dupEpoch uint64

	// Link→flows CSR index and progressive-filling state, all indexed
	// by link ID and reused across epochs. Only entries for links in
	// `touched` are ever valid; everything else stays zero.
	linkOff []int32   // segment start into csr
	linkEnd []int32   // segment end (exclusive)
	linkCnt []int32   // unfrozen-flow count during filling
	remCap  []float64 // remaining capacity during filling
	csr     []int32   // concatenated per-link active-flow slot lists
	touched []int32   // links with >= 1 routed active flow, discovery order
	active  []int32   // filling worklist, compacted as links saturate

	completedBuf []FlowID

	// Stats.
	linkBytes      []float64 // cumulative bytes per link
	totalBytes     float64
	flowsCompleted int
}

// New creates a simulator with numLinks directed links of uniform
// capacity (bytes/sec).
func New(numLinks int, capacityBps float64) *Sim {
	if numLinks < 0 {
		panic("netsim: negative link count")
	}
	if capacityBps <= 0 || math.IsNaN(capacityBps) {
		panic(fmt.Sprintf("netsim: invalid capacity %v", capacityBps))
	}
	caps := make([]float64, numLinks)
	for i := range caps {
		caps[i] = capacityBps
	}
	return NewWithCapacities(caps)
}

// NewWithCapacities creates a simulator with per-link capacities.
func NewWithCapacities(caps []float64) *Sim {
	for i, c := range caps {
		if c <= 0 || math.IsNaN(c) {
			panic(fmt.Sprintf("netsim: invalid capacity %v at link %d", c, i))
		}
	}
	n := len(caps)
	return &Sim{
		capacity:  append([]float64(nil), caps...),
		dupMark:   make([]uint64, n),
		linkOff:   make([]int32, n),
		linkEnd:   make([]int32, n),
		linkCnt:   make([]int32, n),
		remCap:    make([]float64, n),
		linkBytes: make([]float64, n),
	}
}

// Reset returns the simulator to a freshly-constructed state with the
// given per-link capacities, retaining every backing array it can —
// the seam that lets a pooled Sim replay one compiled flow set after
// another without re-allocating the arena, CSR index or filling state.
// A Reset Sim is indistinguishable from NewWithCapacities(caps) to
// every public method. The caps slice is copied.
func (s *Sim) Reset(caps []float64) {
	for i, c := range caps {
		if c <= 0 || math.IsNaN(c) {
			panic(fmt.Sprintf("netsim: invalid capacity %v at link %d", c, i))
		}
	}
	n := len(caps)
	s.capacity = resize(s.capacity, n)
	copy(s.capacity, caps)
	// Per-link state: sized to n and zeroed. dupMark need not be
	// cleared — dupEpoch keeps counting, so stale marks never match —
	// but must cover every link.
	s.dupMark = resize(s.dupMark, n)
	s.linkOff = resize(s.linkOff, n)
	s.linkEnd = resize(s.linkEnd, n)
	s.linkCnt = resize(s.linkCnt, n)
	for i := range s.linkCnt {
		s.linkCnt[i] = 0
	}
	s.remCap = resize(s.remCap, n)
	s.linkBytes = resize(s.linkBytes, n)
	for i := range s.linkBytes {
		s.linkBytes[i] = 0
	}
	// Flow state: empty arena (slots and their links arrays are
	// recycled by allocSlot), fresh ID window, zero clock and stats.
	s.now = 0
	s.flows = s.flows[:0]
	s.freeSlots = s.freeSlots[:0]
	s.numLive = 0
	s.nextID = 0
	s.idBase = 0
	s.id2slot = s.id2slot[:0]
	s.ratesDirty = false
	s.touched = s.touched[:0]
	s.active = s.active[:0]
	s.completedBuf = s.completedBuf[:0]
	s.totalBytes = 0
	s.flowsCompleted = 0
}

// ResetUniform is Reset with numLinks links of one capacity, without
// the caller materializing a capacity slice.
func (s *Sim) ResetUniform(numLinks int, capacityBps float64) {
	if numLinks < 0 {
		panic("netsim: negative link count")
	}
	if capacityBps <= 0 || math.IsNaN(capacityBps) {
		panic(fmt.Sprintf("netsim: invalid capacity %v", capacityBps))
	}
	s.capacity = resize(s.capacity, numLinks)
	for i := range s.capacity {
		s.capacity[i] = capacityBps
	}
	s.Reset(s.capacity)
}

// resize returns sl with length n, reusing its backing array when
// large enough. Grown regions are zeroed (make semantics).
func resize[T int32 | uint64 | float64](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// ActiveFlows returns the number of in-flight flows.
func (s *Sim) ActiveFlows() int { return s.numLive }

// NumLinks returns the number of directed links.
func (s *Sim) NumLinks() int { return len(s.capacity) }

// allocSlot returns a free arena slot, preferring recycled slots (and
// their retained links backing arrays) over arena growth.
func (s *Sim) allocSlot() int32 {
	if n := len(s.freeSlots); n > 0 {
		sl := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return sl
	}
	if len(s.flows) < cap(s.flows) {
		s.flows = s.flows[:len(s.flows)+1] // recycle a drained slot's backing arrays
	} else {
		s.flows = append(s.flows, flow{})
	}
	return int32(len(s.flows) - 1)
}

// slotOf translates a FlowID to its arena slot; ok=false when the flow
// is unknown or complete.
func (s *Sim) slotOf(id FlowID) (int32, bool) {
	if id < s.idBase || int(id-s.idBase) >= len(s.id2slot) {
		return 0, false
	}
	sl := s.id2slot[id-s.idBase]
	if sl < 0 {
		return 0, false
	}
	return sl, true
}

// StartFlow injects a transfer of the given size over the route at the
// current time. latency is the minimum in-flight duration (message
// startup plus per-hop costs); the flow completes when its bytes are
// drained and the latency has elapsed. A flow with an empty route
// (intra-node copy) is limited only by latency. Link IDs must be in
// range; duplicate links in a route are rejected. The route is copied;
// the caller may reuse links.
func (s *Sim) StartFlow(links []int, bytes, latency float64) FlowID {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("netsim: invalid flow size %v", bytes))
	}
	if latency < 0 || math.IsNaN(latency) {
		panic(fmt.Sprintf("netsim: invalid latency %v", latency))
	}
	s.dupEpoch++
	for _, l := range links {
		if l < 0 || l >= len(s.capacity) {
			panic(fmt.Sprintf("netsim: link %d out of range [0,%d)", l, len(s.capacity)))
		}
		if s.dupMark[l] == s.dupEpoch {
			panic(fmt.Sprintf("netsim: duplicate link %d in route", l))
		}
		s.dupMark[l] = s.dupEpoch
	}
	sl := s.allocSlot()
	f := &s.flows[sl]
	f.id = s.nextID
	if cap(f.links) < len(links) {
		f.links = make([]int32, len(links))
	} else {
		f.links = f.links[:len(links)]
	}
	for i, l := range links {
		f.links[i] = int32(l)
	}
	f.total = bytes
	f.remaining = bytes
	f.rate = 0
	f.minDone = s.now + latency
	f.live = true
	s.nextID++
	s.id2slot = append(s.id2slot, sl)
	s.numLive++
	s.totalBytes += bytes
	s.ratesDirty = true
	return f.id
}

// recomputeRates assigns each flow its max-min fair rate by progressive
// filling: repeatedly find the link with the smallest fair share among
// its unfrozen flows, freeze those flows at that share, remove their
// consumption, and continue until every flow is frozen. Flows with no
// links get infinite rate.
//
// The link→flows index is rebuilt once per rate epoch in two linear
// passes over the arena (count, then fill) into the reused CSR arrays;
// all per-link state lives in flat arrays scoped to the touched links.
func (s *Sim) recomputeRates() {
	if !s.ratesDirty {
		return
	}
	s.ratesDirty = false

	// Reset per-link counters from the previous epoch.
	for _, l := range s.touched {
		s.linkCnt[l] = 0
	}
	s.touched = s.touched[:0]

	// Pass 1: per-link flow counts, touched-link discovery, unfrozen
	// marking. Arena slot order is deterministic (StartFlow order plus
	// repeatable free-list recycling), so everything downstream is too.
	unfrozen := 0
	routeLen := 0
	for i := range s.flows {
		f := &s.flows[i]
		if !f.live {
			continue
		}
		if len(f.links) == 0 {
			f.rate = math.Inf(1)
			continue
		}
		f.rate = -1 // marks unfrozen
		unfrozen++
		routeLen += len(f.links)
		for _, l := range f.links {
			if s.linkCnt[l] == 0 {
				s.touched = append(s.touched, l)
			}
			s.linkCnt[l]++
		}
	}
	if unfrozen == 0 {
		return
	}

	// Lay out CSR segments and reset per-link filling state.
	if cap(s.csr) < routeLen {
		s.csr = make([]int32, routeLen)
	} else {
		s.csr = s.csr[:routeLen]
	}
	var off int32
	for _, l := range s.touched {
		s.linkOff[l] = off
		s.linkEnd[l] = off // fill cursor; ends at segment end
		off += s.linkCnt[l]
		s.remCap[l] = s.capacity[l]
	}
	// Pass 2: fill per-link slot lists.
	for i := range s.flows {
		f := &s.flows[i]
		if !f.live || len(f.links) == 0 {
			continue
		}
		for _, l := range f.links {
			s.csr[s.linkEnd[l]] = int32(i)
			s.linkEnd[l]++
		}
	}

	// Progressive filling over the touched links; saturated links are
	// compacted out of the worklist as their unfrozen count hits zero.
	s.active = append(s.active[:0], s.touched...)
	for unfrozen > 0 {
		// Find bottleneck share: minimal fair share among links with
		// unfrozen flows.
		share := math.Inf(1)
		n := 0
		for _, l := range s.active {
			if s.linkCnt[l] <= 0 {
				continue
			}
			s.active[n] = l
			n++
			if sh := s.remCap[l] / float64(s.linkCnt[l]); sh < share {
				share = sh
			}
		}
		s.active = s.active[:n]
		if math.IsInf(share, 1) {
			panic("netsim: progressive filling found no bottleneck with unfrozen flows")
		}
		// Freeze every unfrozen flow on links at (or numerically at)
		// the bottleneck share.
		frozeAny := false
		for _, l := range s.active {
			cnt := s.linkCnt[l]
			if cnt <= 0 {
				continue
			}
			if s.remCap[l]/float64(cnt) > share*(1+1e-12) {
				continue
			}
			for _, sl := range s.csr[s.linkOff[l]:s.linkEnd[l]] {
				f := &s.flows[sl]
				if f.rate >= 0 {
					continue
				}
				f.rate = share
				unfrozen--
				frozeAny = true
				for _, fl := range f.links {
					s.remCap[fl] -= share
					if s.remCap[fl] < 0 {
						s.remCap[fl] = 0
					}
					s.linkCnt[fl]--
				}
			}
		}
		if !frozeAny {
			panic("netsim: progressive filling stalled")
		}
	}
}

// TimeToNextCompletion returns the interval until the earliest flow
// completion, or ok=false when no flows are active.
func (s *Sim) TimeToNextCompletion() (float64, bool) {
	if s.numLive == 0 {
		return 0, false
	}
	s.recomputeRates()
	next := math.Inf(1)
	for i := range s.flows {
		f := &s.flows[i]
		if !f.live {
			continue
		}
		if t := s.flowCompletionIn(f); t < next {
			next = t
		}
	}
	return next, true
}

func (s *Sim) flowCompletionIn(f *flow) float64 {
	drain := 0.0
	if f.remaining > 0 {
		if math.IsInf(f.rate, 1) {
			drain = 0
		} else if f.rate <= 0 {
			return math.Inf(1)
		} else {
			drain = f.remaining / f.rate
		}
	}
	lat := f.minDone - s.now
	if lat < 0 {
		lat = 0
	}
	return math.Max(drain, lat)
}

// completionEpsilon batches completions that occur within a relative
// time window, keeping symmetric workloads deterministic despite
// floating-point noise.
const completionEpsilon = 1e-9

// Advance moves simulation time forward by dt seconds, draining bytes
// at the current fair rates, and returns the IDs of flows that
// completed (in ascending ID order). Flows complete only exactly at
// the end of the interval if their completion falls within it;
// callers that need precise completion times should advance by
// TimeToNextCompletion increments (as Step does). The returned slice
// is reused by the next Advance call.
func (s *Sim) Advance(dt float64) []FlowID {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("netsim: invalid advance %v", dt))
	}
	s.recomputeRates()
	s.now += dt
	s.completedBuf = s.completedBuf[:0]
	for i := range s.flows {
		f := &s.flows[i]
		if !f.live {
			continue
		}
		if f.remaining > 0 && !math.IsInf(f.rate, 1) {
			drained := f.rate * dt
			carried := drained
			if f.remaining < carried {
				carried = f.remaining
			}
			for _, l := range f.links {
				s.linkBytes[l] += carried
			}
			f.remaining -= drained
			if f.remaining < f.total*completionEpsilon {
				f.remaining = 0
			}
		} else if f.remaining > 0 {
			// Infinite-rate (linkless) flow drains instantly.
			f.remaining = 0
		}
		if f.remaining <= 0 && f.minDone <= s.now*(1+completionEpsilon)+completionEpsilon {
			f.live = false
			s.id2slot[f.id-s.idBase] = -1
			s.freeSlots = append(s.freeSlots, int32(i))
			s.numLive--
			s.flowsCompleted++
			s.completedBuf = append(s.completedBuf, f.id)
		}
	}
	if len(s.completedBuf) == 0 {
		return nil
	}
	s.ratesDirty = true
	slices.Sort(s.completedBuf)
	s.compactIDWindow()
	return s.completedBuf
}

// compactIDWindow reclaims id→slot translation space: fully when the
// simulator drains (arena, free list and window all reset), and by
// sliding the window past the completed prefix otherwise, so that a
// long-running never-idle simulation stays bounded.
func (s *Sim) compactIDWindow() {
	if s.numLive == 0 {
		s.flows = s.flows[:0] // slots (and their links arrays) are recycled via allocSlot
		s.freeSlots = s.freeSlots[:0]
		s.id2slot = s.id2slot[:0]
		s.idBase = s.nextID
		return
	}
	trim := 0
	for trim < len(s.id2slot) && s.id2slot[trim] < 0 {
		trim++
	}
	if trim > 0 {
		n := copy(s.id2slot, s.id2slot[trim:])
		s.id2slot = s.id2slot[:n]
		s.idBase += FlowID(trim)
	}
}

// Step advances to the next flow completion and returns the completed
// flow IDs; ok=false when no flows are active. Cohorts of flows whose
// completions coincide (the common case in the paper's symmetric
// workloads) are returned as one batch, costing a single rate
// recomputation. Like Advance, the returned slice is reused by the
// next Step/Advance call — copy it to retain the IDs.
func (s *Sim) Step() ([]FlowID, bool) {
	dt, ok := s.TimeToNextCompletion()
	if !ok {
		return nil, false
	}
	done := s.Advance(dt)
	// Numerical guard: the earliest completion must actually complete.
	for len(done) == 0 {
		done = s.Advance(completionEpsilon * (1 + s.now))
	}
	return done, true
}

// RunUntilIdle advances until no flows remain and returns the total
// elapsed time since the call.
func (s *Sim) RunUntilIdle() float64 {
	start := s.now
	for {
		if _, ok := s.Step(); !ok {
			return s.now - start
		}
	}
}

// FlowRate returns the current fair rate of an active flow
// (bytes/sec), or ok=false if the flow is unknown or complete.
func (s *Sim) FlowRate(id FlowID) (float64, bool) {
	sl, ok := s.slotOf(id)
	if !ok {
		return 0, false
	}
	s.recomputeRates()
	return s.flows[sl].rate, true
}

// Stats summarizes simulator activity.
type Stats struct {
	Now            float64
	TotalBytes     float64
	FlowsCompleted int
	ActiveFlows    int
	MaxLinkBytes   float64
	BusiestLink    int
}

// Stats returns a snapshot of cumulative statistics.
func (s *Sim) Stats() Stats {
	st := Stats{
		Now:            s.now,
		TotalBytes:     s.totalBytes,
		FlowsCompleted: s.flowsCompleted,
		ActiveFlows:    s.numLive,
		BusiestLink:    -1,
	}
	for l, b := range s.linkBytes {
		if b > st.MaxLinkBytes {
			st.MaxLinkBytes = b
			st.BusiestLink = l
		}
	}
	return st
}

// LinkBytes returns cumulative bytes carried by a link.
func (s *Sim) LinkBytes(l int) float64 {
	if l < 0 || l >= len(s.linkBytes) {
		panic(fmt.Sprintf("netsim: link %d out of range", l))
	}
	return s.linkBytes[l]
}
