// Package netsim is a discrete-event, flow-level network simulator
// with max-min fair bandwidth sharing. It models long-lived transfers
// (flows) over a set of directed links with fixed capacities: at every
// instant each flow receives its max-min fair rate (computed by
// progressive filling), and the simulation advances from one flow
// completion to the next.
//
// Flow-level simulation is the right granularity for the paper's
// experiments, which are bandwidth-bound with hundred-megabyte
// messages: the quantity that determines completion time is exactly
// "how many flows share the bottleneck link", the same static model
// the paper's §4.1 predictions use, but resolved dynamically so that
// staggered starts and multi-bottleneck cascades are simulated rather
// than assumed.
package netsim

import (
	"fmt"
	"math"
	"sort"
)

// FlowID identifies an active or completed flow.
type FlowID int

// Flow is a point-to-point transfer over a fixed route.
type flow struct {
	id        FlowID
	links     []int
	total     float64 // bytes at injection
	remaining float64 // bytes
	rate      float64 // bytes/sec, set by recomputeRates
	minDone   float64 // absolute time before which the flow cannot complete (latency)
	done      bool
}

// Sim is the simulator state. Create with New; not safe for concurrent
// use (the mpi engine serializes access).
type Sim struct {
	capacity []float64 // per directed link, bytes/sec
	now      float64

	flows      map[FlowID]*flow
	nextID     FlowID
	ratesDirty bool

	// linkFlows maps link -> active flows through it; rebuilt lazily.
	linkFlows map[int][]*flow

	// Stats.
	linkBytes      []float64 // cumulative bytes per link
	totalBytes     float64
	flowsCompleted int
}

// New creates a simulator with numLinks directed links of uniform
// capacity (bytes/sec).
func New(numLinks int, capacityBps float64) *Sim {
	if numLinks < 0 {
		panic("netsim: negative link count")
	}
	if capacityBps <= 0 || math.IsNaN(capacityBps) {
		panic(fmt.Sprintf("netsim: invalid capacity %v", capacityBps))
	}
	caps := make([]float64, numLinks)
	for i := range caps {
		caps[i] = capacityBps
	}
	return NewWithCapacities(caps)
}

// NewWithCapacities creates a simulator with per-link capacities.
func NewWithCapacities(caps []float64) *Sim {
	for i, c := range caps {
		if c <= 0 || math.IsNaN(c) {
			panic(fmt.Sprintf("netsim: invalid capacity %v at link %d", c, i))
		}
	}
	return &Sim{
		capacity:  append([]float64(nil), caps...),
		flows:     make(map[FlowID]*flow),
		linkFlows: make(map[int][]*flow),
		linkBytes: make([]float64, len(caps)),
	}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// ActiveFlows returns the number of in-flight flows.
func (s *Sim) ActiveFlows() int { return len(s.flows) }

// NumLinks returns the number of directed links.
func (s *Sim) NumLinks() int { return len(s.capacity) }

// StartFlow injects a transfer of the given size over the route at the
// current time. latency is the minimum in-flight duration (message
// startup plus per-hop costs); the flow completes when its bytes are
// drained and the latency has elapsed. A flow with an empty route
// (intra-node copy) is limited only by latency. Link IDs must be in
// range; duplicate links in a route are rejected.
func (s *Sim) StartFlow(links []int, bytes, latency float64) FlowID {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("netsim: invalid flow size %v", bytes))
	}
	if latency < 0 || math.IsNaN(latency) {
		panic(fmt.Sprintf("netsim: invalid latency %v", latency))
	}
	seen := make(map[int]bool, len(links))
	for _, l := range links {
		if l < 0 || l >= len(s.capacity) {
			panic(fmt.Sprintf("netsim: link %d out of range [0,%d)", l, len(s.capacity)))
		}
		if seen[l] {
			panic(fmt.Sprintf("netsim: duplicate link %d in route", l))
		}
		seen[l] = true
	}
	f := &flow{
		id:        s.nextID,
		links:     append([]int(nil), links...),
		total:     bytes,
		remaining: bytes,
		minDone:   s.now + latency,
	}
	s.nextID++
	s.flows[f.id] = f
	s.totalBytes += bytes
	s.ratesDirty = true
	return f.id
}

// recomputeRates assigns each flow its max-min fair rate by progressive
// filling: repeatedly find the link with the smallest fair share among
// its unfrozen flows, freeze those flows at that share, remove their
// consumption, and continue until every flow is frozen. Flows with no
// links get infinite rate.
func (s *Sim) recomputeRates() {
	if !s.ratesDirty {
		return
	}
	s.ratesDirty = false

	// Rebuild link->flows index.
	for l := range s.linkFlows {
		delete(s.linkFlows, l)
	}
	unfrozen := 0
	for _, f := range s.flows {
		if len(f.links) == 0 {
			f.rate = math.Inf(1)
			continue
		}
		f.rate = -1 // marks unfrozen
		unfrozen++
		for _, l := range f.links {
			s.linkFlows[l] = append(s.linkFlows[l], f)
		}
	}
	if unfrozen == 0 {
		return
	}
	// Deterministic iteration order over links.
	activeLinks := make([]int, 0, len(s.linkFlows))
	for l := range s.linkFlows {
		activeLinks = append(activeLinks, l)
	}
	sort.Ints(activeLinks)

	remCap := make(map[int]float64, len(activeLinks))
	remCnt := make(map[int]int, len(activeLinks))
	for _, l := range activeLinks {
		remCap[l] = s.capacity[l]
		remCnt[l] = len(s.linkFlows[l])
	}

	for unfrozen > 0 {
		// Find bottleneck link: minimal fair share among links with
		// unfrozen flows.
		share := math.Inf(1)
		for _, l := range activeLinks {
			if remCnt[l] <= 0 {
				continue
			}
			if sh := remCap[l] / float64(remCnt[l]); sh < share {
				share = sh
			}
		}
		if math.IsInf(share, 1) {
			panic("netsim: progressive filling found no bottleneck with unfrozen flows")
		}
		// Freeze every unfrozen flow on links at (or numerically at)
		// the bottleneck share.
		frozeAny := false
		for _, l := range activeLinks {
			if remCnt[l] <= 0 {
				continue
			}
			if remCap[l]/float64(remCnt[l]) > share*(1+1e-12) {
				continue
			}
			for _, f := range s.linkFlows[l] {
				if f.rate >= 0 {
					continue
				}
				f.rate = share
				unfrozen--
				frozeAny = true
				for _, fl := range f.links {
					remCap[fl] -= share
					if remCap[fl] < 0 {
						remCap[fl] = 0
					}
					remCnt[fl]--
				}
			}
		}
		if !frozeAny {
			panic("netsim: progressive filling stalled")
		}
	}
}

// TimeToNextCompletion returns the interval until the earliest flow
// completion, or ok=false when no flows are active.
func (s *Sim) TimeToNextCompletion() (float64, bool) {
	if len(s.flows) == 0 {
		return 0, false
	}
	s.recomputeRates()
	next := math.Inf(1)
	for _, f := range s.flows {
		if t := s.flowCompletionIn(f); t < next {
			next = t
		}
	}
	return next, true
}

func (s *Sim) flowCompletionIn(f *flow) float64 {
	drain := 0.0
	if f.remaining > 0 {
		if math.IsInf(f.rate, 1) {
			drain = 0
		} else if f.rate <= 0 {
			return math.Inf(1)
		} else {
			drain = f.remaining / f.rate
		}
	}
	lat := f.minDone - s.now
	if lat < 0 {
		lat = 0
	}
	return math.Max(drain, lat)
}

// completionEpsilon batches completions that occur within a relative
// time window, keeping symmetric workloads deterministic despite
// floating-point noise.
const completionEpsilon = 1e-9

// Advance moves simulation time forward by dt seconds, draining bytes
// at the current fair rates, and returns the IDs of flows that
// completed (in ascending ID order). Flows complete only exactly at
// the end of the interval if their completion falls within it;
// callers that need precise completion times should advance by
// TimeToNextCompletion increments (as Step does).
func (s *Sim) Advance(dt float64) []FlowID {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("netsim: invalid advance %v", dt))
	}
	s.recomputeRates()
	s.now += dt
	var completed []FlowID
	for _, f := range s.flows {
		if f.remaining > 0 && !math.IsInf(f.rate, 1) {
			drained := f.rate * dt
			for _, l := range f.links {
				s.linkBytes[l] += math.Min(drained, f.remaining)
			}
			f.remaining -= drained
			if f.remaining < f.total*completionEpsilon {
				f.remaining = 0
			}
		} else if f.remaining > 0 {
			// Infinite-rate (linkless) flow drains instantly.
			f.remaining = 0
		}
		if f.remaining <= 0 && f.minDone <= s.now*(1+completionEpsilon)+completionEpsilon {
			f.done = true
			completed = append(completed, f.id)
		}
	}
	for _, id := range completed {
		delete(s.flows, id)
		s.flowsCompleted++
	}
	if len(completed) > 0 {
		s.ratesDirty = true
		sort.Slice(completed, func(i, j int) bool { return completed[i] < completed[j] })
	}
	return completed
}

// Step advances to the next flow completion and returns the completed
// flow IDs; ok=false when no flows are active.
func (s *Sim) Step() ([]FlowID, bool) {
	dt, ok := s.TimeToNextCompletion()
	if !ok {
		return nil, false
	}
	done := s.Advance(dt)
	// Numerical guard: the earliest completion must actually complete.
	for len(done) == 0 {
		done = s.Advance(completionEpsilon * (1 + s.now))
	}
	return done, true
}

// RunUntilIdle advances until no flows remain and returns the total
// elapsed time since the call.
func (s *Sim) RunUntilIdle() float64 {
	start := s.now
	for {
		if _, ok := s.Step(); !ok {
			return s.now - start
		}
	}
}

// FlowRate returns the current fair rate of an active flow
// (bytes/sec), or ok=false if the flow is unknown or complete.
func (s *Sim) FlowRate(id FlowID) (float64, bool) {
	f, ok := s.flows[id]
	if !ok {
		return 0, false
	}
	s.recomputeRates()
	return f.rate, true
}

// Stats summarizes simulator activity.
type Stats struct {
	Now            float64
	TotalBytes     float64
	FlowsCompleted int
	ActiveFlows    int
	MaxLinkBytes   float64
	BusiestLink    int
}

// Stats returns a snapshot of cumulative statistics.
func (s *Sim) Stats() Stats {
	st := Stats{
		Now:            s.now,
		TotalBytes:     s.totalBytes,
		FlowsCompleted: s.flowsCompleted,
		ActiveFlows:    len(s.flows),
		BusiestLink:    -1,
	}
	for l, b := range s.linkBytes {
		if b > st.MaxLinkBytes {
			st.MaxLinkBytes = b
			st.BusiestLink = l
		}
	}
	return st
}

// LinkBytes returns cumulative bytes carried by a link.
func (s *Sim) LinkBytes(l int) float64 {
	if l < 0 || l >= len(s.linkBytes) {
		panic(fmt.Sprintf("netsim: link %d out of range", l))
	}
	return s.linkBytes[l]
}
