package netsim

import (
	"testing"
)

// runPairs drives a fixed two-flow contention workload and returns the
// completion time: two flows share link 0, one continues over link 1.
func runPairs(s *Sim) float64 {
	s.StartFlow([]int{0}, 100, 0)
	s.StartFlow([]int{0, 1}, 50, 0)
	s.StartFlow([]int{2}, 10, 0.5)
	return s.RunUntilIdle()
}

// TestResetMatchesFresh: a Reset simulator reproduces a fresh one
// bit-for-bit across repeated reuse, including shrinking and growing
// the link count.
func TestResetMatchesFresh(t *testing.T) {
	fresh := New(3, 10)
	want := runPairs(fresh)
	wantStats := fresh.Stats()

	reused := New(7, 99) // different size and capacity
	// Dirty it thoroughly: active flows left in flight.
	reused.StartFlow([]int{0, 1, 2, 3}, 1e6, 0)
	reused.StartFlow([]int{4}, 5, 0)
	reused.Step()

	for round := 0; round < 3; round++ {
		reused.ResetUniform(3, 10)
		if reused.Now() != 0 || reused.ActiveFlows() != 0 || reused.NumLinks() != 3 {
			t.Fatalf("round %d: reset state now=%v active=%d links=%d", round, reused.Now(), reused.ActiveFlows(), reused.NumLinks())
		}
		got := runPairs(reused)
		if got != want {
			t.Fatalf("round %d: reused sim time %v, fresh %v", round, got, want)
		}
		gs := reused.Stats()
		if gs.TotalBytes != wantStats.TotalBytes || gs.FlowsCompleted != wantStats.FlowsCompleted ||
			gs.MaxLinkBytes != wantStats.MaxLinkBytes || gs.BusiestLink != wantStats.BusiestLink {
			t.Fatalf("round %d: stats %+v, fresh %+v", round, gs, wantStats)
		}
		for l := 0; l < 3; l++ {
			if reused.LinkBytes(l) != fresh.LinkBytes(l) {
				t.Fatalf("round %d: link %d bytes %v, fresh %v", round, l, reused.LinkBytes(l), fresh.LinkBytes(l))
			}
		}
	}
}

// TestResetWithCapacities: per-link capacities apply after Reset and
// the caps slice is copied, not aliased.
func TestResetWithCapacities(t *testing.T) {
	s := New(1, 5)
	caps := []float64{10, 20}
	s.Reset(caps)
	caps[0] = 1e-9 // mutating the caller's slice must not affect the sim
	s.StartFlow([]int{0}, 100, 0)
	s.StartFlow([]int{1}, 100, 0)
	elapsed := s.RunUntilIdle()
	if elapsed != 10 { // 100 bytes at 10 B/s on the slower link
		t.Fatalf("elapsed = %v, want 10", elapsed)
	}
}

// TestResetRejectsInvalidCapacity: validation matches the constructor.
func TestResetRejectsInvalidCapacity(t *testing.T) {
	s := New(1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	s.Reset([]float64{0})
}

// TestResetOldFlowIDsInvalid: flows from before a Reset are unknown
// afterward, and new IDs restart from zero.
func TestResetOldFlowIDsInvalid(t *testing.T) {
	s := New(2, 10)
	old := s.StartFlow([]int{0}, 100, 0)
	s.Reset([]float64{10, 10})
	if _, ok := s.FlowRate(old); ok {
		t.Fatal("pre-reset flow still resolvable")
	}
	if id := s.StartFlow([]int{1}, 1, 0); id != 0 {
		t.Fatalf("first post-reset flow ID = %d, want 0", id)
	}
}
