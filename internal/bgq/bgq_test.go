package bgq

import (
	"testing"

	"netpart/internal/iso"
	"netpart/internal/torus"
)

func TestMachineBasics(t *testing.T) {
	mira := Mira()
	if mira.Midplanes() != 96 {
		t.Errorf("Mira midplanes = %d, want 96", mira.Midplanes())
	}
	if mira.Nodes() != 49152 {
		t.Errorf("Mira nodes = %d, want 49152", mira.Nodes())
	}
	if !mira.NodeShape().Equal(torus.Shape{16, 16, 12, 8, 2}) {
		t.Errorf("Mira network = %v", mira.NodeShape())
	}
	jq := Juqueen()
	if jq.Midplanes() != 56 || jq.Nodes() != 28672 {
		t.Errorf("JUQUEEN size = %d mp / %d nodes", jq.Midplanes(), jq.Nodes())
	}
	if !jq.NodeShape().Equal(torus.Shape{28, 8, 8, 8, 2}) {
		t.Errorf("JUQUEEN network = %v", jq.NodeShape())
	}
	seq := Sequoia()
	if seq.Nodes() != 98304 {
		t.Errorf("Sequoia nodes = %d, want 98304", seq.Nodes())
	}
	if !seq.NodeShape().Equal(torus.Shape{16, 16, 16, 12, 2}) {
		t.Errorf("Sequoia network = %v", seq.NodeShape())
	}
	if Juqueen54().Midplanes() != 54 || Juqueen48().Midplanes() != 48 {
		t.Error("hypothetical machine sizes wrong")
	}
	if len(Catalog()) != 5 {
		t.Error("catalog size")
	}
}

func TestPartitionBasics(t *testing.T) {
	p := MustPartition(2, 1, 2, 1)
	if !p.Geometry().Equal(torus.Shape{2, 2, 1, 1}) {
		t.Errorf("canonicalization: %v", p.Geometry())
	}
	if p.Midplanes() != 4 || p.Nodes() != 2048 {
		t.Errorf("sizes: %d mp, %d nodes", p.Midplanes(), p.Nodes())
	}
	if !p.NodeShape().Equal(torus.Shape{8, 8, 4, 4, 2}) {
		t.Errorf("node shape: %v", p.NodeShape())
	}
	if p.String() != "2x2x1x1" {
		t.Errorf("String = %q", p.String())
	}
	// Rank padding and trimming.
	q, err := NewPartition(torus.Shape{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Geometry().Equal(torus.Shape{3, 2, 1, 1}) {
		t.Errorf("padded geometry: %v", q.Geometry())
	}
	if _, err := NewPartition(torus.Shape{2, 2, 2, 2, 2}); err == nil {
		t.Error("5 non-trivial dims should fail")
	}
	if _, err := NewPartition(torus.Shape{2, 2, 2, 2, 1, 1}); err != nil {
		t.Errorf("trailing 1s should be fine: %v", err)
	}
	if _, err := NewPartition(torus.Shape{0, 2}); err == nil {
		t.Error("invalid geometry should fail")
	}
	if !MustPartition(4, 1, 1, 1).IsRing() || MustPartition(2, 2, 1, 1).IsRing() || MustPartition(1, 1, 1, 1).IsRing() {
		t.Error("IsRing misclassification")
	}
}

// TestBisectionMatches2NL: the exact isoperimetric bisection equals the
// 2N/L closed form of [12] for every geometry of every cataloged
// machine.
func TestBisectionMatches2NL(t *testing.T) {
	for _, m := range Catalog() {
		for _, size := range m.FeasibleSizes() {
			for _, p := range m.Geometries(size) {
				closed, err := iso.BisectionBandwidth2NL(p.NodeShape())
				if err != nil {
					t.Fatalf("%s %v: %v", m.Name, p, err)
				}
				if got := p.BisectionBW(); got != closed {
					t.Errorf("%s %v: exact %d != 2N/L %d", m.Name, p, got, closed)
				}
			}
		}
	}
}

// TestTable6MiraFull reproduces every row of Table 6 (the full Mira
// list): current geometry, its bisection bandwidth, and the proposed
// geometry where one exists.
func TestTable6MiraFull(t *testing.T) {
	mira := Mira()
	rows := []struct {
		midplanes  int
		current    string
		currentBW  int
		proposed   string // "" when the paper proposes no change
		proposedBW int
	}{
		{1, "1x1x1x1", 256, "", 0},
		{2, "2x1x1x1", 256, "", 0},
		{4, "4x1x1x1", 256, "2x2x1x1", 512},
		{8, "4x2x1x1", 512, "2x2x2x1", 1024},
		{16, "4x4x1x1", 1024, "2x2x2x2", 2048},
		{24, "4x3x2x1", 1536, "3x2x2x2", 2048},
		{32, "4x4x2x1", 2048, "", 0},
		{48, "4x4x3x1", 3072, "", 0},
		{64, "4x4x2x2", 4096, "", 0},
		{96, "4x4x3x2", 6144, "", 0},
	}
	if got := mira.PredefinedSizes(); len(got) != len(rows) {
		t.Fatalf("predefined sizes = %v, want %d entries", got, len(rows))
	}
	for _, row := range rows {
		cur, ok := mira.Predefined(row.midplanes)
		if !ok {
			t.Errorf("Mira: no predefined %d-midplane partition", row.midplanes)
			continue
		}
		if cur.String() != row.current {
			t.Errorf("Mira %d mp: current %s, want %s", row.midplanes, cur, row.current)
		}
		if bw := cur.BisectionBW(); bw != row.currentBW {
			t.Errorf("Mira %d mp: current BW %d, want %d", row.midplanes, bw, row.currentBW)
		}
		prop, improved := mira.Proposed(row.midplanes)
		if row.proposed == "" {
			if improved {
				t.Errorf("Mira %d mp: unexpected proposal %s (BW %d)", row.midplanes, prop, prop.BisectionBW())
			}
			continue
		}
		if !improved {
			t.Errorf("Mira %d mp: expected proposal %s, got none", row.midplanes, row.proposed)
			continue
		}
		if prop.String() != row.proposed {
			t.Errorf("Mira %d mp: proposed %s, want %s", row.midplanes, prop, row.proposed)
		}
		if bw := prop.BisectionBW(); bw != row.proposedBW {
			t.Errorf("Mira %d mp: proposed BW %d, want %d", row.midplanes, bw, row.proposedBW)
		}
	}
}

// TestTable1Mira reproduces Table 1 (the improved rows only), also
// checking node counts.
func TestTable1Mira(t *testing.T) {
	mira := Mira()
	rows := []struct {
		nodes, midplanes      int
		current, proposed     string
		currentBW, proposedBW int
	}{
		{2048, 4, "4x1x1x1", "2x2x1x1", 256, 512},
		{4096, 8, "4x2x1x1", "2x2x2x1", 512, 1024},
		{8192, 16, "4x4x1x1", "2x2x2x2", 1024, 2048},
		{12288, 24, "4x3x2x1", "3x2x2x2", 1536, 2048},
	}
	for _, row := range rows {
		cur, _ := mira.Predefined(row.midplanes)
		prop, ok := mira.Proposed(row.midplanes)
		if !ok {
			t.Fatalf("%d mp: no proposal", row.midplanes)
		}
		if cur.Nodes() != row.nodes || prop.Nodes() != row.nodes {
			t.Errorf("%d mp: node counts %d/%d, want %d", row.midplanes, cur.Nodes(), prop.Nodes(), row.nodes)
		}
		if cur.String() != row.current || cur.BisectionBW() != row.currentBW {
			t.Errorf("%d mp: current %s/%d, want %s/%d", row.midplanes, cur, cur.BisectionBW(), row.current, row.currentBW)
		}
		if prop.String() != row.proposed || prop.BisectionBW() != row.proposedBW {
			t.Errorf("%d mp: proposed %s/%d, want %s/%d", row.midplanes, prop, prop.BisectionBW(), row.proposed, row.proposedBW)
		}
	}
}

// TestTable7JuqueenFull reproduces every row of Table 7: worst and
// best geometries per feasible midplane count on JUQUEEN.
func TestTable7JuqueenFull(t *testing.T) {
	jq := Juqueen()
	rows := []struct {
		nodes, midplanes int
		worst            string
		worstBW          int
		best             string // "" when worst == best (single geometry)
		bestBW           int
	}{
		{512, 1, "1x1x1x1", 256, "", 0},
		{1024, 2, "2x1x1x1", 256, "", 0},
		{1536, 3, "3x1x1x1", 256, "", 0},
		{2048, 4, "4x1x1x1", 256, "2x2x1x1", 512},
		{2560, 5, "5x1x1x1", 256, "", 0},
		{3072, 6, "6x1x1x1", 256, "3x2x1x1", 512},
		{3584, 7, "7x1x1x1", 256, "", 0},
		{4096, 8, "4x2x1x1", 512, "2x2x2x1", 1024},
		{5120, 10, "5x2x1x1", 512, "", 0},
		{6144, 12, "6x2x1x1", 512, "3x2x2x1", 1024},
		{7168, 14, "7x2x1x1", 512, "", 0},
		{8192, 16, "4x2x2x1", 1024, "2x2x2x2", 2048},
		{10240, 20, "5x2x2x1", 1024, "", 0},
		{12288, 24, "6x2x2x1", 1024, "3x2x2x2", 2048},
		{14336, 28, "7x2x2x1", 1024, "", 0},
		{16384, 32, "4x2x2x2", 2048, "", 0},
		{20480, 40, "5x2x2x2", 2048, "", 0},
		{24576, 48, "6x2x2x2", 2048, "", 0},
		{28672, 56, "7x2x2x2", 2048, "", 0},
	}
	feasible := jq.FeasibleSizes()
	if len(feasible) != len(rows) {
		t.Errorf("JUQUEEN feasible sizes = %v (%d), want %d", feasible, len(feasible), len(rows))
	}
	for _, row := range rows {
		worst, ok := jq.Worst(row.midplanes)
		if !ok {
			t.Errorf("%d mp: no geometry", row.midplanes)
			continue
		}
		if worst.Nodes() != row.nodes {
			t.Errorf("%d mp: %d nodes, want %d", row.midplanes, worst.Nodes(), row.nodes)
		}
		if worst.String() != row.worst || worst.BisectionBW() != row.worstBW {
			t.Errorf("%d mp: worst %s/%d, want %s/%d", row.midplanes, worst, worst.BisectionBW(), row.worst, row.worstBW)
		}
		best, _ := jq.Best(row.midplanes)
		if row.best == "" {
			if best.BisectionBW() != worst.BisectionBW() {
				t.Errorf("%d mp: best %s/%d should equal worst %s/%d", row.midplanes, best, best.BisectionBW(), worst, worst.BisectionBW())
			}
			continue
		}
		if best.String() != row.best || best.BisectionBW() != row.bestBW {
			t.Errorf("%d mp: best %s/%d, want %s/%d", row.midplanes, best, best.BisectionBW(), row.best, row.bestBW)
		}
	}
}

// TestTable2Juqueen reproduces Table 2 (rows where best and worst
// differ).
func TestTable2Juqueen(t *testing.T) {
	jq := Juqueen()
	rows := []struct {
		midplanes       int
		worst, best     string
		worstBW, bestBW int
	}{
		{4, "4x1x1x1", "2x2x1x1", 256, 512},
		{6, "6x1x1x1", "3x2x1x1", 256, 512},
		{8, "4x2x1x1", "2x2x2x1", 512, 1024},
		{12, "6x2x1x1", "3x2x2x1", 512, 1024},
		{16, "4x2x2x1", "2x2x2x2", 1024, 2048},
		{24, "6x2x2x1", "3x2x2x2", 1024, 2048},
	}
	for _, row := range rows {
		worst, _ := jq.Worst(row.midplanes)
		best, _ := jq.Best(row.midplanes)
		if worst.String() != row.worst || worst.BisectionBW() != row.worstBW {
			t.Errorf("%d mp: worst %s/%d, want %s/%d", row.midplanes, worst, worst.BisectionBW(), row.worst, row.worstBW)
		}
		if best.String() != row.best || best.BisectionBW() != row.bestBW {
			t.Errorf("%d mp: best %s/%d, want %s/%d", row.midplanes, best, best.BisectionBW(), row.best, row.bestBW)
		}
	}
}

// TestTable5Machines reproduces the full Table 5: best-case partitions
// of JUQUEEN, JUQUEEN-54 and JUQUEEN-48. An empty geometry means the
// midplane count is infeasible on that machine.
func TestTable5Machines(t *testing.T) {
	type entry struct {
		geom string
		bw   int
	}
	rows := []struct {
		nodes, midplanes int
		jq, j54, j48     entry
	}{
		{512, 1, entry{"1x1x1x1", 256}, entry{"1x1x1x1", 256}, entry{"1x1x1x1", 256}},
		{1024, 2, entry{"2x1x1x1", 256}, entry{"2x1x1x1", 256}, entry{"2x1x1x1", 256}},
		{1536, 3, entry{"3x1x1x1", 256}, entry{"3x1x1x1", 256}, entry{"3x1x1x1", 256}},
		{2048, 4, entry{"2x2x1x1", 512}, entry{"2x2x1x1", 512}, entry{"2x2x1x1", 512}},
		{2560, 5, entry{"5x1x1x1", 256}, entry{}, entry{}},
		{3072, 6, entry{"3x2x1x1", 512}, entry{"3x2x1x1", 512}, entry{"3x2x1x1", 512}},
		{3584, 7, entry{"7x1x1x1", 256}, entry{}, entry{}},
		{4096, 8, entry{"2x2x2x1", 1024}, entry{"2x2x2x1", 1024}, entry{"2x2x2x1", 1024}},
		{4608, 9, entry{}, entry{"3x3x1x1", 768}, entry{"3x3x1x1", 768}},
		{5120, 10, entry{"5x2x1x1", 512}, entry{}, entry{}},
		{6144, 12, entry{"3x2x2x1", 1024}, entry{"3x2x2x1", 1024}, entry{"3x2x2x1", 1024}},
		{7168, 14, entry{"7x2x1x1", 512}, entry{}, entry{}},
		{8192, 16, entry{"2x2x2x2", 2048}, entry{"2x2x2x2", 2048}, entry{"2x2x2x2", 2048}},
		{9216, 18, entry{}, entry{"3x3x2x1", 1536}, entry{"3x3x2x1", 1536}},
		{10240, 20, entry{"5x2x2x1", 1024}, entry{}, entry{}},
		{12288, 24, entry{"3x2x2x2", 2048}, entry{"3x2x2x2", 2048}, entry{"3x2x2x2", 2048}},
		{13824, 27, entry{}, entry{"3x3x3x1", 2304}, entry{}},
		{14336, 28, entry{"7x2x2x1", 1024}, entry{}, entry{}},
		{16384, 32, entry{"4x2x2x2", 2048}, entry{}, entry{"4x2x2x2", 2048}},
		{18432, 36, entry{}, entry{"3x3x2x2", 3072}, entry{"3x3x2x2", 3072}},
		{20480, 40, entry{"5x2x2x2", 2048}, entry{}, entry{}},
		{24576, 48, entry{"6x2x2x2", 2048}, entry{}, entry{"4x3x2x2", 3072}},
		{27648, 54, entry{}, entry{"3x3x3x2", 4608}, entry{}},
		{28672, 56, entry{"7x2x2x2", 2048}, entry{}, entry{}},
	}
	machines := []struct {
		m   *Machine
		sel func(r struct {
			nodes, midplanes int
			jq, j54, j48     entry
		}) entry
	}{
		{Juqueen(), func(r struct {
			nodes, midplanes int
			jq, j54, j48     entry
		}) entry {
			return r.jq
		}},
		{Juqueen54(), func(r struct {
			nodes, midplanes int
			jq, j54, j48     entry
		}) entry {
			return r.j54
		}},
		{Juqueen48(), func(r struct {
			nodes, midplanes int
			jq, j54, j48     entry
		}) entry {
			return r.j48
		}},
	}
	for _, mc := range machines {
		for _, row := range rows {
			want := mc.sel(row)
			best, ok := mc.m.Best(row.midplanes)
			if want.geom == "" {
				if ok {
					t.Errorf("%s %d mp: expected infeasible, got %s", mc.m.Name, row.midplanes, best)
				}
				continue
			}
			if !ok {
				t.Errorf("%s %d mp: expected %s, got infeasible", mc.m.Name, row.midplanes, want.geom)
				continue
			}
			if best.String() != want.geom || best.BisectionBW() != want.bw {
				t.Errorf("%s %d mp: best %s/%d, want %s/%d",
					mc.m.Name, row.midplanes, best, best.BisectionBW(), want.geom, want.bw)
			}
		}
	}
}

func TestPolicies(t *testing.T) {
	mira := Mira()
	jq := Juqueen()

	if p, err := (PredefinedPolicy{}).Select(mira, 24); err != nil || p.String() != "4x3x2x1" {
		t.Errorf("predefined Mira 24: %v, %v", p, err)
	}
	if _, err := (PredefinedPolicy{}).Select(mira, 3); err == nil {
		t.Error("Mira has no 3-midplane predefined partition")
	}
	if _, err := (PredefinedPolicy{}).Select(jq, 4); err == nil {
		t.Error("JUQUEEN has no predefined list at all")
	}
	if p, err := (BestCasePolicy{}).Select(jq, 24); err != nil || p.String() != "3x2x2x2" {
		t.Errorf("best JUQUEEN 24: %v, %v", p, err)
	}
	if p, err := (WorstCasePolicy{}).Select(jq, 24); err != nil || p.String() != "6x2x2x1" {
		t.Errorf("worst JUQUEEN 24: %v, %v", p, err)
	}
	if _, err := (BestCasePolicy{}).Select(jq, 9); err == nil {
		t.Error("9 midplanes infeasible on JUQUEEN")
	}
	for _, pol := range []Policy{PredefinedPolicy{}, BestCasePolicy{}, WorstCasePolicy{}} {
		if pol.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestBWPerNode(t *testing.T) {
	// Figure 4 caption: per-node bisection identical for JUQUEEN's 4 and
	// 8 midplane worst-case partitions, 50% smaller for 6 midplanes.
	jq := Juqueen()
	w4, _ := jq.Worst(4)
	w6, _ := jq.Worst(6)
	w8, _ := jq.Worst(8)
	if w4.BWPerNode() != w8.BWPerNode() {
		t.Errorf("per-node BW differs: 4mp %v, 8mp %v", w4.BWPerNode(), w8.BWPerNode())
	}
	if got, want := w6.BWPerNode()/w4.BWPerNode(), 2.0/3.0; got != want {
		t.Errorf("6mp/4mp per-node ratio = %v, want %v", got, want)
	}
	if MustPartition(1, 1, 1, 1).BisectionGBps() != 512 {
		t.Errorf("single midplane bisection GB/s = %v, want 512", MustPartition(1, 1, 1, 1).BisectionGBps())
	}
}

func TestGeometriesDeterministicAndComplete(t *testing.T) {
	jq := Juqueen()
	a := jq.Geometries(8)
	b := jq.Geometries(8)
	if len(a) != len(b) || len(a) != 2 {
		t.Fatalf("Geometries(8) = %v / %v", a, b)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Error("non-deterministic enumeration")
		}
	}
	if jq.Geometries(0) != nil || jq.Geometries(57) != nil {
		t.Error("out-of-range sizes should yield nil")
	}
}

func TestSetPredefinedValidation(t *testing.T) {
	m, _ := NewMachine("toy", torus.Shape{2, 2, 1, 1})
	if err := m.SetPredefined([]torus.Shape{{3, 1, 1, 1}}); err == nil {
		t.Error("oversized predefined partition should fail")
	}
	if err := m.SetPredefined([]torus.Shape{{2, 1, 1, 1}, {1, 2, 1, 1}}); err == nil {
		t.Error("duplicate size should fail")
	}
	if err := m.SetPredefined([]torus.Shape{{0}}); err == nil {
		t.Error("invalid geometry should fail")
	}
	if err := m.SetPredefined([]torus.Shape{{2, 2, 1, 1}, {2, 1, 1, 1}}); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
}

func BenchmarkBisectionBW(b *testing.B) {
	p := MustPartition(3, 2, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.BisectionBW()
	}
}

func BenchmarkBestGeometrySearch(b *testing.B) {
	jq := Juqueen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := jq.Best(24); !ok {
			b.Fatal("no geometry")
		}
	}
}
