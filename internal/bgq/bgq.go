// Package bgq models IBM Blue Gene/Q machines at the granularity the
// paper's analysis operates on: 4-dimensional grids of midplanes, each
// midplane a 4x4x4x4x2 torus of 512 compute nodes whose fifth
// (length-2) dimension is internal. Partitions are cuboids of whole
// midplanes; their induced networks are sub-tori that retain
// wrap-around links in every dimension (paper §2).
//
// The package provides the machine catalog used in the paper (Mira,
// JUQUEEN, Sequoia, and the hypothetical JUQUEEN-48/JUQUEEN-54 of §5),
// partition geometry enumeration, internal bisection bandwidth
// computed exactly from the edge-isoperimetric machinery of package
// iso (cross-checked against the 2N/L closed form of Chen et al.
// [12]), and the allocation policies whose comparison is the heart of
// the paper: predefined lists (Mira), best-case and worst-case
// geometry selection (JUQUEEN).
package bgq

import (
	"fmt"
	"sort"
	"sync"

	"netpart/internal/iso"
	"netpart/internal/torus"
)

// Architecture constants of the Blue Gene/Q series (paper §2 and [12]).
const (
	// MidplaneNodes is the number of compute nodes in one midplane.
	MidplaneNodes = 512
	// MidplaneSide is the node-dimension length contributed by one
	// midplane in each of the four external torus dimensions.
	MidplaneSide = 4
	// InternalDim is the length of the fifth torus dimension, internal
	// to each midplane.
	InternalDim = 2
	// LinkGBps is the bandwidth of one Blue Gene/Q network link in
	// gigabytes per second per direction [12].
	LinkGBps = 2.0
)

// Partition is a Blue Gene/Q allocation: a cuboid of whole midplanes,
// identified by its canonical (descending-sorted) 4D midplane
// geometry. Rotated geometries are the same partition.
type Partition struct {
	geom torus.Shape // canonical, rank 4
}

// NewPartition builds a partition from a midplane geometry of rank <=
// 4 (shorter shapes are padded with 1s).
func NewPartition(geom torus.Shape) (Partition, error) {
	if err := geom.Validate(); err != nil {
		return Partition{}, err
	}
	g := geom.Canonical()
	if len(g) > 4 {
		for _, v := range g[4:] {
			if v != 1 {
				return Partition{}, fmt.Errorf("bgq: geometry %v has more than 4 non-trivial dimensions", geom)
			}
		}
		g = g[:4]
	}
	for len(g) < 4 {
		g = g.Append(1)
	}
	return Partition{geom: g}, nil
}

// MustPartition is NewPartition, panicking on error.
func MustPartition(dims ...int) Partition {
	p, err := NewPartition(torus.Shape(dims))
	if err != nil {
		panic(err)
	}
	return p
}

// Geometry returns the canonical midplane geometry.
func (p Partition) Geometry() torus.Shape { return p.geom.Clone() }

// Midplanes returns the number of midplanes in the partition.
func (p Partition) Midplanes() int { return p.geom.Volume() }

// Nodes returns the number of compute nodes.
func (p Partition) Nodes() int { return p.geom.Volume() * MidplaneNodes }

// NodeShape returns the partition's network dimensions in compute
// nodes: each midplane dimension times 4, plus the internal length-2
// fifth dimension.
func (p Partition) NodeShape() torus.Shape {
	return p.geom.Scale(MidplaneSide).Append(InternalDim)
}

// String renders the partition geometry, e.g. "3x2x2x2".
func (p Partition) String() string { return p.geom.String() }

// Equal reports whether two partitions have the same canonical
// geometry.
func (p Partition) Equal(o Partition) bool { return p.geom.Equal(o.geom) }

// BisectionBW returns the partition's internal bisection bandwidth in
// normalized link units (each bidirectional link contributes 1), the
// quantity plotted in Figures 1, 2 and 7. It is computed exactly as
// the minimal cuboid cut at half the node count of the partition's
// node-level 5D torus; TestBisectionMatches2NL verifies agreement with
// the 2N/L closed form of [12]. Package iso memoizes the search per
// shape, so policy sweeps that revisit geometries (Best/Worst/Proposed
// over full enumerations, and the experiment drivers' repeated table
// passes) pay for one exact search per distinct shape. Safe for
// concurrent use.
func (p Partition) BisectionBW() int {
	res, err := iso.Bisection(p.NodeShape())
	if err != nil {
		// Unreachable for valid partitions: node counts are multiples
		// of 512.
		panic(fmt.Sprintf("bgq: bisection of %v: %v", p.NodeShape(), err))
	}
	return res.Perimeter
}

// BisectionGBps returns the internal bisection bandwidth in GB/s per
// direction.
func (p Partition) BisectionGBps() float64 {
	return float64(p.BisectionBW()) * LinkGBps
}

// BWPerNode returns bisection links per compute node, the quantity the
// paper uses to predict contention-bound slowdowns (e.g. Figure 4's
// caption compares per-node bisection across partition sizes).
func (p Partition) BWPerNode() float64 {
	return float64(p.BisectionBW()) / float64(p.Nodes())
}

// IsRing reports whether the geometry is ring-shaped: a single
// non-trivial dimension. Ring partitions are the 'spiking drops' of
// Figure 2 — their bisection stays at the single-midplane floor no
// matter how many midplanes they span.
func (p Partition) IsRing() bool {
	return p.geom[1] == 1 && p.geom[0] > 1
}

// Machine is a Blue Gene/Q system: a 4D grid of midplanes plus an
// optional predefined list of allowed partition geometries (Mira's
// scheduler only permits a fixed list; JUQUEEN's permits any fitting
// cuboid).
type Machine struct {
	Name string
	Grid torus.Shape // midplane grid, rank 4, canonical

	// predefined, when non-nil, lists the partitions the scheduler
	// permits, keyed by midplane count.
	predefined map[int]Partition

	// extremeMemo caches Best/Worst per (midplanes, wantMax): the
	// search enumerates every geometry of the size and scores each
	// bisection bandwidth, and schedulers ask for the same handful of
	// sizes on every placement decision. Depends only on Grid, which
	// is fixed at construction. Safe for concurrent use.
	extremeMemo sync.Map
}

// NewMachine builds a machine from its midplane grid.
func NewMachine(name string, grid torus.Shape) (*Machine, error) {
	p, err := NewPartition(grid)
	if err != nil {
		return nil, fmt.Errorf("bgq: machine %s: %w", name, err)
	}
	return &Machine{Name: name, Grid: p.Geometry()}, nil
}

// Midplanes returns the total midplane count.
func (m *Machine) Midplanes() int { return m.Grid.Volume() }

// Nodes returns the total compute node count.
func (m *Machine) Nodes() int { return m.Grid.Volume() * MidplaneNodes }

// NodeShape returns the full machine network in compute nodes.
func (m *Machine) NodeShape() torus.Shape {
	return m.Grid.Scale(MidplaneSide).Append(InternalDim)
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d midplanes (%s), %d nodes (network %s)",
		m.Name, m.Midplanes(), m.Grid, m.Nodes(), m.NodeShape())
}

// SetPredefined installs a predefined allowed-partition list, one
// geometry per midplane count, validating that each fits the machine.
func (m *Machine) SetPredefined(geoms []torus.Shape) error {
	pre := make(map[int]Partition, len(geoms))
	for _, g := range geoms {
		p, err := NewPartition(g)
		if err != nil {
			return err
		}
		if !p.Geometry().FitsIn(m.Grid) {
			return fmt.Errorf("bgq: predefined partition %v does not fit %s grid %v", g, m.Name, m.Grid)
		}
		if prev, dup := pre[p.Midplanes()]; dup {
			return fmt.Errorf("bgq: duplicate predefined size %d (%v and %v)", p.Midplanes(), prev, p)
		}
		pre[p.Midplanes()] = p
	}
	m.predefined = pre
	return nil
}

// Predefined returns the scheduler's predefined partition for the
// given midplane count, if the machine has a predefined list and the
// count is in it.
func (m *Machine) Predefined(midplanes int) (Partition, bool) {
	p, ok := m.predefined[midplanes]
	return p, ok
}

// PredefinedSizes returns the sorted midplane counts of the predefined
// list (nil if the machine has none).
func (m *Machine) PredefinedSizes() []int {
	if m.predefined == nil {
		return nil
	}
	sizes := make([]int, 0, len(m.predefined))
	for s := range m.predefined {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}

// Geometries returns every partition geometry of the given midplane
// count that fits the machine grid, in deterministic order.
func (m *Machine) Geometries(midplanes int) []Partition {
	if midplanes < 1 || midplanes > m.Midplanes() {
		return nil
	}
	shapes := torus.EnumerateGeometries(m.Grid, 4, midplanes)
	out := make([]Partition, 0, len(shapes))
	for _, s := range shapes {
		p, err := NewPartition(s)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// FeasibleSizes returns every midplane count for which at least one
// cuboid geometry fits the machine, ascending.
func (m *Machine) FeasibleSizes() []int {
	var sizes []int
	for c := 1; c <= m.Midplanes(); c++ {
		if len(m.Geometries(c)) > 0 {
			sizes = append(sizes, c)
		}
	}
	return sizes
}

// Best returns the geometry with maximal internal bisection bandwidth
// for the given midplane count (ties broken by enumeration order).
func (m *Machine) Best(midplanes int) (Partition, bool) {
	return m.extreme(midplanes, true)
}

// Worst returns the geometry with minimal internal bisection bandwidth
// for the given midplane count.
func (m *Machine) Worst(midplanes int) (Partition, bool) {
	return m.extreme(midplanes, false)
}

// extremeKey identifies one memoized Best/Worst lookup.
type extremeKey struct {
	midplanes int
	wantMax   bool
}

// extremeResult is one memoized Best/Worst answer.
type extremeResult struct {
	part Partition
	ok   bool
}

func (m *Machine) extreme(midplanes int, wantMax bool) (Partition, bool) {
	k := extremeKey{midplanes, wantMax}
	if v, ok := m.extremeMemo.Load(k); ok {
		e := v.(extremeResult)
		return e.part, e.ok
	}
	geoms := m.Geometries(midplanes)
	if len(geoms) == 0 {
		m.extremeMemo.Store(k, extremeResult{})
		return Partition{}, false
	}
	best := geoms[0]
	bestBW := best.BisectionBW()
	for _, g := range geoms[1:] {
		bw := g.BisectionBW()
		if (wantMax && bw > bestBW) || (!wantMax && bw < bestBW) {
			best, bestBW = g, bw
		}
	}
	m.extremeMemo.Store(k, extremeResult{best, true})
	return best, true
}

// Proposed returns the paper's proposed partition for the given
// midplane count: the best-bisection geometry, but only when it
// strictly improves on the machine's current (predefined) geometry.
// The second result reports whether an improvement exists.
func (m *Machine) Proposed(midplanes int) (Partition, bool) {
	cur, ok := m.Predefined(midplanes)
	if !ok {
		return Partition{}, false
	}
	best, ok := m.Best(midplanes)
	if !ok {
		return Partition{}, false
	}
	if best.BisectionBW() > cur.BisectionBW() {
		return best, true
	}
	return Partition{}, false
}
