package bgq

import (
	"encoding/json"
	"fmt"

	"netpart/internal/torus"
)

// MarshalJSON renders a partition as its geometry string plus derived
// quantities, so analysis results serialize usefully for tooling.
func (p Partition) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Geometry    string `json:"geometry"`
		Midplanes   int    `json:"midplanes"`
		Nodes       int    `json:"nodes"`
		NodeShape   string `json:"nodeShape"`
		BisectionBW int    `json:"bisectionBW"`
	}{
		Geometry:    p.String(),
		Midplanes:   p.Midplanes(),
		Nodes:       p.Nodes(),
		NodeShape:   p.NodeShape().String(),
		BisectionBW: p.BisectionBW(),
	})
}

// UnmarshalJSON accepts either the object form produced by MarshalJSON
// or a bare geometry string ("3x2x2x2").
func (p *Partition) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		sh, err := torus.ParseShape(s)
		if err != nil {
			return err
		}
		np, err := NewPartition(sh)
		if err != nil {
			return err
		}
		*p = np
		return nil
	}
	var obj struct {
		Geometry string `json:"geometry"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		return fmt.Errorf("bgq: partition JSON must be a geometry string or object: %w", err)
	}
	sh, err := torus.ParseShape(obj.Geometry)
	if err != nil {
		return err
	}
	np, err := NewPartition(sh)
	if err != nil {
		return err
	}
	*p = np
	return nil
}
