package bgq

import "netpart/internal/torus"

// The machine catalog of the paper: the two systems it benchmarks
// (Mira, JUQUEEN), the one it analyzes without experiments (Sequoia),
// and the two hypothetical machines of §5's machine-design discussion
// (JUQUEEN-48, JUQUEEN-54).

// Mira returns the Argonne Blue Gene/Q: 48 racks, 96 midplanes in a
// 4x4x3x2 grid (49152 nodes, network 16x16x12x8x2), with the
// predefined partition list of Table 6.
func Mira() *Machine {
	m, err := NewMachine("Mira", torus.Shape{4, 4, 3, 2})
	if err != nil {
		panic(err)
	}
	// Table 6, "Current Geometry" column.
	err = m.SetPredefined([]torus.Shape{
		{1, 1, 1, 1},
		{2, 1, 1, 1},
		{4, 1, 1, 1},
		{4, 2, 1, 1},
		{4, 4, 1, 1},
		{4, 3, 2, 1},
		{4, 4, 2, 1},
		{4, 4, 3, 1},
		{4, 4, 2, 2},
		{4, 4, 3, 2},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Juqueen returns the Jülich Blue Gene/Q: 28 racks, 56 midplanes in a
// 7x2x2x2 grid (28672 nodes, network 28x8x8x8x2). JUQUEEN's scheduler
// permits any cuboid of midplanes that fits, so it has no predefined
// list; use Best/Worst to obtain the extremes of Table 7.
func Juqueen() *Machine {
	m, err := NewMachine("JUQUEEN", torus.Shape{7, 2, 2, 2})
	if err != nil {
		panic(err)
	}
	return m
}

// Sequoia returns the Lawrence Livermore Blue Gene/Q: 96 racks, 192
// midplanes in a 4x4x4x3 grid (98304 nodes, network 16x16x16x12x2).
// Its scheduler appears to support all geometries the network allows
// (paper §5), so like JUQUEEN it has no predefined list.
func Sequoia() *Machine {
	m, err := NewMachine("Sequoia", torus.Shape{4, 4, 4, 3})
	if err != nil {
		panic(err)
	}
	return m
}

// Juqueen54 returns the hypothetical 54-midplane machine of §5 with
// balanced dimensions 3x3x3x2. Although smaller than JUQUEEN, its
// partitions' bisection bandwidths dominate JUQUEEN's at nearly every
// size (Figure 7, Table 5).
func Juqueen54() *Machine {
	m, err := NewMachine("JUQUEEN-54", torus.Shape{3, 3, 3, 2})
	if err != nil {
		panic(err)
	}
	return m
}

// Juqueen48 returns the hypothetical 48-midplane machine of §5 with
// dimensions 4x3x2x2.
func Juqueen48() *Machine {
	m, err := NewMachine("JUQUEEN-48", torus.Shape{4, 3, 2, 2})
	if err != nil {
		panic(err)
	}
	return m
}

// Catalog returns all modeled machines.
func Catalog() []*Machine {
	return []*Machine{Mira(), Juqueen(), Sequoia(), Juqueen54(), Juqueen48()}
}
