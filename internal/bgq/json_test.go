package bgq

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPartitionJSONRoundTrip(t *testing.T) {
	p := MustPartition(3, 2, 2, 2)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"geometry":"3x2x2x2"`, `"nodes":12288`, `"bisectionBW":2048`, `"nodeShape":"12x8x8x8x2"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshaled %s missing %s", data, want)
		}
	}
	var q Partition
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Equal(p) {
		t.Errorf("round trip: %v != %v", q, p)
	}
}

func TestPartitionJSONFromString(t *testing.T) {
	var p Partition
	if err := json.Unmarshal([]byte(`"2x2x1x1"`), &p); err != nil {
		t.Fatal(err)
	}
	if p.BisectionBW() != 512 {
		t.Errorf("BW = %d", p.BisectionBW())
	}
	if err := json.Unmarshal([]byte(`"0x2"`), &p); err == nil {
		t.Error("invalid geometry should fail")
	}
	if err := json.Unmarshal([]byte(`{"geometry":"bogus"}`), &p); err == nil {
		t.Error("invalid object geometry should fail")
	}
	if err := json.Unmarshal([]byte(`42`), &p); err == nil {
		t.Error("non-string non-object should fail")
	}
}

func TestMachineAnalysisJSON(t *testing.T) {
	// A full machine analysis serializes cleanly (the cmd -json path).
	jq := Juqueen()
	type sizeReport struct {
		Midplanes int       `json:"midplanes"`
		Best      Partition `json:"best"`
		Worst     Partition `json:"worst"`
	}
	var reports []sizeReport
	for _, s := range jq.FeasibleSizes() {
		b, _ := jq.Best(s)
		w, _ := jq.Worst(s)
		reports = append(reports, sizeReport{s, b, w})
	}
	data, err := json.MarshalIndent(reports, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"7x2x2x2"`) {
		t.Error("full-machine geometry missing")
	}
	var back []sizeReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reports) || !back[3].Best.Equal(reports[3].Best) {
		t.Error("round trip mismatch")
	}
}
