package bgq

import "fmt"

// Policy selects a partition geometry for an allocation request of a
// given midplane count — the processor allocation policy whose effect
// on contention the paper quantifies. Policies are deterministic;
// schedulers that pick "whatever is free" sit between BestCase and
// WorstCase, which is exactly the inconsistency §4.3 warns about.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the geometry the policy allocates for the request,
	// or an error when the machine cannot satisfy it.
	Select(m *Machine, midplanes int) (Partition, error)
}

// PredefinedPolicy allocates from the machine's predefined partition
// list (Mira's production policy). Requests for sizes not on the list
// fail.
type PredefinedPolicy struct{}

// Name implements Policy.
func (PredefinedPolicy) Name() string { return "predefined" }

// Select implements Policy.
func (PredefinedPolicy) Select(m *Machine, midplanes int) (Partition, error) {
	if p, ok := m.Predefined(midplanes); ok {
		return p, nil
	}
	if m.predefined == nil {
		return Partition{}, fmt.Errorf("bgq: %s has no predefined partition list", m.Name)
	}
	return Partition{}, fmt.Errorf("bgq: %s has no predefined %d-midplane partition", m.Name, midplanes)
}

// BestCasePolicy allocates the geometry with maximal internal
// bisection bandwidth — the paper's proposed policy.
type BestCasePolicy struct{}

// Name implements Policy.
func (BestCasePolicy) Name() string { return "best-case" }

// Select implements Policy.
func (BestCasePolicy) Select(m *Machine, midplanes int) (Partition, error) {
	if p, ok := m.Best(midplanes); ok {
		return p, nil
	}
	return Partition{}, fmt.Errorf("bgq: no %d-midplane cuboid fits %s", midplanes, m.Name)
}

// WorstCasePolicy allocates the geometry with minimal internal
// bisection bandwidth — the adversarial baseline of the JUQUEEN
// experiments.
type WorstCasePolicy struct{}

// Name implements Policy.
func (WorstCasePolicy) Name() string { return "worst-case" }

// Select implements Policy.
func (WorstCasePolicy) Select(m *Machine, midplanes int) (Partition, error) {
	if p, ok := m.Worst(midplanes); ok {
		return p, nil
	}
	return Partition{}, fmt.Errorf("bgq: no %d-midplane cuboid fits %s", midplanes, m.Name)
}
