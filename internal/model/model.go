// Package model maps the exact operation counts of the simulated
// algorithms onto wall-clock predictions for paper-scale runs — the
// runs too large to execute through the goroutine-per-rank engine
// (31,213 ranks multiplying 32,928^2 matrices). It is the explicit,
// auditable substitution for the authors' physical Blue Gene/Q nodes:
// a handful of calibration constants (below) convert communication
// volumes and flop counts into seconds.
//
// Calibration procedure (recorded in EXPERIMENTS.md): the link
// bandwidth is the published 2 GB/s/direction [12]; CoreFlopsPerSec is
// fixed so the 4-midplane matmul computation time matches the paper's
// reported 0.554 s; BisectFraction and LocalBytesPerNodePerSec are
// fixed so the 4-midplane communication times match Figure 5's
// current/proposed pair (0.37 s / 0.27 s); the remaining points of
// Figures 5 and 6 are predictions, compared against the paper in
// EXPERIMENTS.md.
package model

import (
	"fmt"
	"math"

	"netpart/internal/bgq"
	"netpart/internal/strassen"
)

// Calibration constants.
const (
	// LinkBytesPerSec is the Blue Gene/Q link bandwidth per direction
	// [12].
	LinkBytesPerSec = 2e9
	// CoreFlopsPerSec is the effective per-core floating-point rate of
	// the CAPS leaf multiplications (calibrated; BG/Q A2 cores peak at
	// 12.8 Gflop/s, and ~2.4 effective is typical for in-cache DGEMM
	// fractions of a production code).
	CoreFlopsPerSec = 2.42e9
	// BisectFraction is the fraction of CAPS redistribution traffic
	// that crosses the partition bisection (calibrated; the rest stays
	// within recursion subgroups).
	BisectFraction = 0.151
	// LocalBytesPerNodePerSec is the effective per-node bandwidth of
	// the non-bisection traffic component (calibrated).
	LocalBytesPerNodePerSec = 1.826e9
	// StepOverheadSec is the fixed software/latency overhead charged
	// per BFS level (calibrated).
	StepOverheadSec = 2e-3
	// L2BytesPerNode is the shared L2 capacity of one BG/Q processor
	// (§4.3: 32 MB per node).
	L2BytesPerNode = 32 << 20
	// MemPenalty multiplies communication time when the working set
	// exceeds the combined L2 capacity, forcing the communication
	// cores through DRAM (§4.3's explanation of the super-linear
	// anomaly; calibrated).
	MemPenalty = 2.0
)

// MatmulConfig describes one matmul experiment execution, mirroring
// the rows of Tables 3 and 4.
type MatmulConfig struct {
	// N is the matrix dimension.
	N int
	// Ranks is the MPI rank count (f * 7^k).
	Ranks int
	// BFSSteps is the number of BFS recursion steps.
	BFSSteps int
	// Partition is the allocation the job runs in.
	Partition bgq.Partition
}

// Validate checks the CAPS constraints and the node capacity (at most
// 16 application cores per node, §4.2).
func (c MatmulConfig) Validate() error {
	if err := strassen.ValidateParams(c.Ranks, c.N); err != nil {
		return err
	}
	nodes := c.Partition.Nodes()
	if c.Ranks > 16*nodes {
		return fmt.Errorf("model: %d ranks exceed 16 cores x %d nodes", c.Ranks, nodes)
	}
	if c.N%(1<<uint(c.BFSSteps)) != 0 {
		return fmt.Errorf("model: dimension %d not divisible by 2^%d", c.N, c.BFSSteps)
	}
	return nil
}

// RanksPerNode returns the average MPI ranks per compute node
// (Table 3's "Avg cores per proc" column: one core per rank).
func (c MatmulConfig) RanksPerNode() float64 {
	return float64(c.Ranks) / float64(c.Partition.Nodes())
}

// MaxActiveCores returns the smallest power-of-two core budget that
// accommodates RanksPerNode (Table 3's "Max. active cores").
func (c MatmulConfig) MaxActiveCores() int {
	cores := 1
	for float64(cores) < c.RanksPerNode() {
		cores *= 2
	}
	return cores
}

// Prediction is the model's wall-clock estimate for one execution.
type Prediction struct {
	ComputeSec float64
	CommSec    float64
	// MemoryBound reports whether the working set exceeded the
	// combined L2 capacity (triggering MemPenalty).
	MemoryBound bool
	// BisectionSec and LocalSec decompose CommSec (before the memory
	// penalty and per-step overhead).
	BisectionSec float64
	LocalSec     float64
}

// TotalSec returns compute plus communication (no overlap assumed;
// the paper reports the two components separately and excludes
// overlappable costs, as do we).
func (p Prediction) TotalSec() float64 { return p.ComputeSec + p.CommSec }

// PredictMatmul estimates computation and communication times for a
// CAPS execution in the given partition:
//
//	t_comm = [ phi*V/B_bisect + (1-phi)*V/(b_local*nodes) + l*t_step ] * eta
//
// where V is the exact CAPS redistribution volume (strassen.Costs), B
// the partition's internal bisection bandwidth, l the BFS step count,
// and eta the L2 working-set penalty.
func PredictMatmul(cfg MatmulConfig) (Prediction, error) {
	if err := cfg.Validate(); err != nil {
		return Prediction{}, err
	}
	costs, err := strassen.Costs(cfg.N, cfg.Ranks, strassen.AllBFS(cfg.BFSSteps))
	if err != nil {
		return Prediction{}, err
	}
	nodes := float64(cfg.Partition.Nodes())
	volume := costs.TotalWords * 8
	bisect := float64(cfg.Partition.BisectionBW()) * LinkBytesPerSec

	p := Prediction{
		ComputeSec:   costs.FlopsPerRank / CoreFlopsPerSec,
		BisectionSec: BisectFraction * volume / bisect,
		LocalSec:     (1 - BisectFraction) * volume / (LocalBytesPerNodePerSec * nodes),
	}
	comm := p.BisectionSec + p.LocalSec + float64(cfg.BFSSteps)*StepOverheadSec
	if strassen.WorkingSetBytes(cfg.N, cfg.BFSSteps) > nodes*L2BytesPerNode {
		p.MemoryBound = true
		comm *= MemPenalty
	}
	p.CommSec = comm
	return p, nil
}

// PairingConfig describes one bisection-pairing execution (§4.1).
type PairingConfig struct {
	Partition bgq.Partition
	// Rounds is the number of counted communication rounds (26 in the
	// paper: 30 minus 4 warm-up).
	Rounds int
	// ChunkBytes is the message chunk size (0.1342 GB in the paper).
	ChunkBytes float64
	// ChunksPerRound is the number of chunks each pair exchanges per
	// round (16 in the paper, totaling 2 GiB per round).
	ChunksPerRound int
}

// PaperPairing returns the paper's §4.1 parameters for a partition.
func PaperPairing(p bgq.Partition) PairingConfig {
	return PairingConfig{Partition: p, Rounds: 26, ChunkBytes: 0.1342e9, ChunksPerRound: 16}
}

// RoundBytes returns the per-pair, per-direction volume of one round.
func (c PairingConfig) RoundBytes() float64 {
	return c.ChunkBytes * float64(c.ChunksPerRound)
}

// StaticPairingTime is the closed-form prediction for the pairing
// benchmark: under deterministic dimension-ordered routing with
// positive tie-breaking, every node's flow to its antipode loads the
// longest dimension's positive links with N * (L/2) / N = L/2 flows
// per link... more precisely the bottleneck link carries
// (N * L/2) / (number of positive links in that dimension) = L/2
// flows when the dimension has length L >= 3; the per-round time is
// that flow count times RoundBytes / link bandwidth. Package
// experiments cross-checks this closed form against the full flow
// simulation.
func StaticPairingTime(c PairingConfig) float64 {
	shape := c.Partition.NodeShape()
	maxFlows := 0.0
	for _, a := range shape {
		if a < 3 {
			continue // length-2 dimensions carry 1 flow per link
		}
		if f := float64(a) / 2; f > maxFlows {
			maxFlows = f
		}
	}
	if maxFlows == 0 {
		maxFlows = 1
	}
	perRound := maxFlows * c.RoundBytes() / LinkBytesPerSec
	return float64(c.Rounds) * perRound
}

// CombinedL2Bytes returns the pooled L2 capacity of a partition
// (§4.3's 32, 64, 128 GB for 2, 4, 8 midplanes).
func CombinedL2Bytes(p bgq.Partition) float64 {
	return float64(p.Nodes()) * L2BytesPerNode
}

// SpeedupBound returns the paper's headline prediction: the runtime
// ratio between two equal-size partitions for a perfectly
// contention-bound workload equals the inverse ratio of their
// bisection bandwidths, capped at 2 for the geometries in Tables 1-2.
func SpeedupBound(worse, better bgq.Partition) (float64, error) {
	if worse.Nodes() != better.Nodes() {
		return 0, fmt.Errorf("model: partitions %v and %v differ in size", worse, better)
	}
	return float64(better.BisectionBW()) / float64(worse.BisectionBW()), nil
}

// EffectiveGflops converts a prediction into an aggregate Gflop/s
// figure for reporting.
func EffectiveGflops(cfg MatmulConfig, p Prediction) float64 {
	total := strassen.ClassicalFlopCount(cfg.N)
	if p.TotalSec() <= 0 {
		return math.Inf(1)
	}
	return total / p.TotalSec() / 1e9
}
