package model

import (
	"math"
	"testing"

	"netpart/internal/bgq"
)

// table3Config returns the paper's Table 3 configuration for a Mira
// midplane count.
func table3Config(midplanes int, p bgq.Partition) MatmulConfig {
	switch midplanes {
	case 4, 8, 16:
		return MatmulConfig{N: 32928, Ranks: 31213, BFSSteps: 4, Partition: p}
	case 24:
		return MatmulConfig{N: 21952, Ranks: 117649, BFSSteps: 6, Partition: p}
	default:
		panic("unsupported midplane count")
	}
}

func TestTable3Parameters(t *testing.T) {
	mira := bgq.Mira()
	rows := []struct {
		midplanes int
		ranks     int
		maxCores  int
		avgCores  float64
		matrixDim int
	}{
		{4, 31213, 16, 15.24, 32928},
		{8, 31213, 8, 7.62, 32928},
		{16, 31213, 4, 3.81, 32928},
		{24, 117649, 16, 9.57, 21952},
	}
	for _, row := range rows {
		p, ok := mira.Predefined(row.midplanes)
		if !ok {
			t.Fatalf("no predefined %d-midplane partition", row.midplanes)
		}
		cfg := table3Config(row.midplanes, p)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%d mp: config invalid: %v", row.midplanes, err)
		}
		if cfg.Ranks != row.ranks || cfg.N != row.matrixDim {
			t.Errorf("%d mp: ranks/dim %d/%d, want %d/%d", row.midplanes, cfg.Ranks, cfg.N, row.ranks, row.matrixDim)
		}
		if got := cfg.MaxActiveCores(); got != row.maxCores {
			t.Errorf("%d mp: max cores %d, want %d", row.midplanes, got, row.maxCores)
		}
		if got := cfg.RanksPerNode(); math.Abs(got-row.avgCores) > 0.01 {
			t.Errorf("%d mp: avg cores %v, want %v", row.midplanes, got, row.avgCores)
		}
	}
}

func TestPredictMatmulComputeCalibration(t *testing.T) {
	// The 4-midplane computation time calibrates CoreFlopsPerSec; the
	// paper reports 0.554 s and 8/16 midplanes nearly identical
	// (0.5115, 0.4965): our model gives one common value for all three
	// since ranks and dimension are unchanged.
	mira := bgq.Mira()
	var times []float64
	for _, mp := range []int{4, 8, 16} {
		p, _ := mira.Predefined(mp)
		pred, err := PredictMatmul(table3Config(mp, p))
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, pred.ComputeSec)
	}
	if math.Abs(times[0]-0.554) > 0.02 {
		t.Errorf("4mp compute = %v, calibrated target 0.554", times[0])
	}
	if times[0] != times[1] || times[1] != times[2] {
		t.Errorf("compute should not depend on partition size: %v", times)
	}
	// 24 midplanes: much smaller per-rank work (paper: 0.0604 s; our
	// flop accounting gives the same order).
	p24, _ := mira.Predefined(24)
	pred, err := PredictMatmul(table3Config(24, p24))
	if err != nil {
		t.Fatal(err)
	}
	if pred.ComputeSec > 0.1 || pred.ComputeSec < 0.01 {
		t.Errorf("24mp compute = %v, want order 0.03-0.06", pred.ComputeSec)
	}
}

// TestPredictMatmulFigure5Shape verifies the headline shape of
// Figure 5: proposed partitions beat current ones at every midplane
// count, by factors in the paper's observed range, and the 4-midplane
// pair matches the calibration targets.
func TestPredictMatmulFigure5Shape(t *testing.T) {
	mira := bgq.Mira()
	type pair struct{ cur, prop float64 }
	results := map[int]pair{}
	for _, mp := range []int{4, 8, 16, 24} {
		cur, _ := mira.Predefined(mp)
		prop, ok := mira.Proposed(mp)
		if !ok {
			t.Fatalf("no proposal for %d mp", mp)
		}
		pc, err := PredictMatmul(table3Config(mp, cur))
		if err != nil {
			t.Fatal(err)
		}
		pp, err := PredictMatmul(table3Config(mp, prop))
		if err != nil {
			t.Fatal(err)
		}
		results[mp] = pair{pc.CommSec, pp.CommSec}
	}
	// Calibration anchors (paper: 0.37 / 0.27).
	if math.Abs(results[4].cur-0.37) > 0.02 {
		t.Errorf("4mp current comm = %v, want ~0.37", results[4].cur)
	}
	if math.Abs(results[4].prop-0.27) > 0.02 {
		t.Errorf("4mp proposed comm = %v, want ~0.27", results[4].prop)
	}
	for mp, r := range results {
		ratio := r.cur / r.prop
		if ratio <= 1.05 {
			t.Errorf("%d mp: proposed does not win (ratio %v)", mp, ratio)
		}
		if ratio > 2.0 {
			t.Errorf("%d mp: ratio %v exceeds the bisection bound", mp, ratio)
		}
	}
	// Times decrease with partition size for the same problem.
	if !(results[4].cur > results[8].cur && results[8].cur > results[16].cur) {
		t.Errorf("current comm not decreasing: %v", results)
	}
	if !(results[4].prop > results[8].prop && results[8].prop > results[16].prop) {
		t.Errorf("proposed comm not decreasing: %v", results)
	}
}

// TestPredictMatmulFigure6Shape verifies the strong-scaling story of
// Figure 6 / Table 4: the 2-midplane run is memory-bound (working set
// exceeds combined L2), producing super-linear scaling to 4 midplanes;
// scaling 2->8 is near-linear (x4) on proposed geometries and clearly
// sub-linear on current ones; and the 4->8 step on current partitions
// falls well short of x2.
func TestPredictMatmulFigure6Shape(t *testing.T) {
	// Table 4 geometries: current 2/4/8 mp = 2x1x1x1, 4x1x1x1, 4x2x1x1;
	// proposed = 2x1x1x1, 2x2x1x1, 2x2x2x1. Ranks 2401/4802/9604.
	type row struct {
		ranks    int
		current  bgq.Partition
		proposed bgq.Partition
	}
	rows := map[int]row{
		2: {2401, bgq.MustPartition(2, 1, 1, 1), bgq.MustPartition(2, 1, 1, 1)},
		4: {4802, bgq.MustPartition(4, 1, 1, 1), bgq.MustPartition(2, 2, 1, 1)},
		8: {9604, bgq.MustPartition(4, 2, 1, 1), bgq.MustPartition(2, 2, 2, 1)},
	}
	pred := func(p bgq.Partition, ranks int) Prediction {
		t.Helper()
		pr, err := PredictMatmul(MatmulConfig{N: 9408, Ranks: ranks, BFSSteps: 4, Partition: p})
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	cur2 := pred(rows[2].current, rows[2].ranks)
	cur4 := pred(rows[4].current, rows[4].ranks)
	cur8 := pred(rows[8].current, rows[8].ranks)
	prop4 := pred(rows[4].proposed, rows[4].ranks)
	prop8 := pred(rows[8].proposed, rows[8].ranks)

	if !cur2.MemoryBound {
		t.Error("2mp run should be memory bound (39.8 GB > 34.4 GB of L2)")
	}
	if cur4.MemoryBound || cur8.MemoryBound || prop4.MemoryBound || prop8.MemoryBound {
		t.Error("4/8mp runs fit in combined L2")
	}
	// Super-linear 2->4 on both geometries (node count x2, comm
	// speedup > 2 thanks to the L2 effect).
	if s := cur2.CommSec / cur4.CommSec; s <= 2.0 {
		t.Errorf("current 2->4 comm speedup %v, want super-linear", s)
	}
	if s := cur2.CommSec / prop4.CommSec; s <= 2.0 {
		t.Errorf("proposed 2->4 comm speedup %v, want super-linear", s)
	}
	// 2->8 (4x nodes): near-linear on proposed, sub-linear on current.
	sProp := cur2.CommSec / prop8.CommSec
	sCur := cur2.CommSec / cur8.CommSec
	if sProp < 3.5 {
		t.Errorf("proposed 2->8 comm speedup %v, want near-linear (~4)", sProp)
	}
	if sCur >= sProp {
		t.Errorf("current 2->8 speedup %v should trail proposed %v", sCur, sProp)
	}
	// 4->8 on current: clearly sub-linear (paper observed 1.41).
	if s := cur4.CommSec / cur8.CommSec; s >= 1.9 {
		t.Errorf("current 4->8 comm speedup %v, want sub-linear", s)
	}
	// Compute halves as ranks double.
	if r := cur2.ComputeSec / cur4.ComputeSec; math.Abs(r-2) > 0.2 {
		t.Errorf("compute scaling 2->4 = %v, want ~2", r)
	}
}

func TestPredictMatmulValidation(t *testing.T) {
	p := bgq.MustPartition(1, 1, 1, 1)
	if _, err := PredictMatmul(MatmulConfig{N: 49, Ranks: 10000, BFSSteps: 1, Partition: p}); err == nil {
		t.Error("too many ranks should fail")
	}
	if _, err := PredictMatmul(MatmulConfig{N: 100, Ranks: 2401, BFSSteps: 2, Partition: p}); err == nil {
		t.Error("bad dimension should fail")
	}
	if _, err := PredictMatmul(MatmulConfig{N: 98, Ranks: 49, BFSSteps: 3, Partition: p}); err == nil {
		t.Error("n not divisible by 2^BFS should fail")
	}
}

func TestStaticPairingTime(t *testing.T) {
	// 4-midplane current geometry (16x4x4x4x2): 8 flows per bottleneck
	// link, 26 rounds of 16*0.1342 GB: 26*8*2.1472/2 = 223.3 s.
	cur := bgq.MustPartition(4, 1, 1, 1)
	got := StaticPairingTime(PaperPairing(cur))
	want := 26 * 8 * 16 * 0.1342e9 / 2e9
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("pairing time = %v, want %v", got, want)
	}
	// Proposed 2x2x1x1: half the time.
	prop := bgq.MustPartition(2, 2, 1, 1)
	if r := got / StaticPairingTime(PaperPairing(prop)); math.Abs(r-2) > 1e-9 {
		t.Errorf("current/proposed ratio %v, want 2", r)
	}
}

func TestSpeedupBound(t *testing.T) {
	cur := bgq.MustPartition(4, 1, 1, 1)
	prop := bgq.MustPartition(2, 2, 1, 1)
	s, err := SpeedupBound(cur, prop)
	if err != nil {
		t.Fatal(err)
	}
	if s != 2.0 {
		t.Errorf("speedup bound %v, want 2", s)
	}
	if _, err := SpeedupBound(cur, bgq.MustPartition(1, 1, 1, 1)); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestCombinedL2(t *testing.T) {
	// §4.3: 32, 64, 128 GB of combined L2 for 2, 4, 8 midplanes.
	for _, c := range []struct {
		mp  int
		gib float64
	}{{2, 32}, {4, 64}, {8, 128}} {
		p := bgq.MustPartition(c.mp, 1, 1, 1)
		got := CombinedL2Bytes(p) / (1 << 30)
		if got != c.gib {
			t.Errorf("%d mp combined L2 = %v GiB, want %v", c.mp, got, c.gib)
		}
	}
}

func TestEffectiveGflops(t *testing.T) {
	mira := bgq.Mira()
	p, _ := mira.Predefined(4)
	cfg := table3Config(4, p)
	pred, err := PredictMatmul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := EffectiveGflops(cfg, pred)
	if g <= 0 || math.IsInf(g, 1) {
		t.Errorf("gflops = %v", g)
	}
}
