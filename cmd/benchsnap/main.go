// Command benchsnap runs a benchmark selection through `go test
// -bench` and records the parsed results as JSON, so the performance
// trajectory of the hot paths is tracked as data instead of buried in
// CI logs.
//
// Usage:
//
//	benchsnap [-bench 'BenchmarkSweep|BenchmarkScenario|BenchmarkTrace|BenchmarkCluster|BenchmarkStore|BenchmarkArchive|BenchmarkMetrics']
//	          [-benchtime 500ms] [-count 3] [-out BENCH_sweep.json]
//	          [-compare BENCH_sweep.json -tolerance 25] [packages ...]
//
// Packages default to the repository root plus the store and serve
// packages (the persistence hot paths). The output
// document records the toolchain, platform, the exact selection, and
// one entry per benchmark with iterations, ns/op and (when -benchmem
// applies, which benchsnap always passes) B/op and allocs/op.
// Repetitions (-count) average into one entry and entries are sorted
// by name, so diffs between snapshots are stable.
//
// Two consumers:
//
//   - CI runs `go run ./cmd/benchsnap -out /tmp/BENCH_sweep.json` and
//     prints it, so every build log carries a parseable snapshot.
//   - The checked-in BENCH_sweep.json is the per-PR reference
//     snapshot; regenerate it with `go run ./cmd/benchsnap` when a PR
//     touches the scenario/sweep hot paths, and compare against the
//     previous revision (absolute values are machine-dependent —
//     compare snapshots taken on the same machine).
//
// Regression-guard mode: -compare loads a reference snapshot and
// fails (exit 1) if any benchmark present in both runs is more than
// -tolerance percent slower on ns/op than the reference. Faster is
// never a failure, and benchmarks missing from either side are
// reported but not fatal. Absolute times differ across machines, so
// guard runs only make sense with a generous tolerance or a reference
// taken on the same hardware class.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// snapshot is the recorded document.
type snapshot struct {
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Count     int      `json:"count"`
	Packages  []string `json:"packages"`
	Results   []result `json:"results"`
}

// benchLine matches `go test -bench -benchmem` output, e.g.
//
//	BenchmarkSweepStatic64-8   42   27993741 ns/op   2387224 B/op   14972 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", "BenchmarkSweep|BenchmarkScenario|BenchmarkTrace|BenchmarkCluster|BenchmarkStore|BenchmarkArchive|BenchmarkMetrics", "benchmark selection regexp (go test -bench)")
	benchtime := flag.String("benchtime", "500ms", "per-benchmark time or iteration budget")
	count := flag.Int("count", 3, "repetitions per benchmark")
	out := flag.String("out", "BENCH_sweep.json", "output file (- for stdout)")
	compare := flag.String("compare", "", "reference snapshot to guard against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 25, "allowed ns/op regression over the reference, percent")
	flag.Parse()
	log.SetPrefix("benchsnap: ")
	log.SetFlags(0)

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{".", "./internal/store", "./internal/serve"}
	}

	args := []string{"test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), "-benchmem"}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("go %s: %v", strings.Join(args, " "), err)
	}

	// Repetitions (-count > 1) of one benchmark average into a single
	// entry, keeping snapshots diffable.
	type acc struct {
		result
		n int64
	}
	byName := map[string]*acc{}
	for _, line := range strings.Split(buf.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		a := byName[m[1]]
		if a == nil {
			a = &acc{result: result{Name: m[1]}}
			byName[m[1]] = a
		}
		a.n++
		a.Iterations += iters
		a.NsPerOp += ns
		a.BytesPerOp += bytesOp
		a.AllocsPerOp += allocsOp
	}
	if len(byName) == 0 {
		log.Fatalf("no benchmarks matched %q in %v", *bench, pkgs)
	}

	snap := snapshot{
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
		Packages:  pkgs,
	}
	for _, a := range byName {
		r := a.result
		r.Iterations /= a.n
		r.NsPerOp /= float64(a.n)
		r.BytesPerOp /= a.n
		r.AllocsPerOp /= a.n
		snap.Results = append(snap.Results, r)
	}
	sort.Slice(snap.Results, func(i, j int) bool { return snap.Results[i].Name < snap.Results[j].Name })

	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
	} else {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchsnap: recorded %d benchmarks to %s\n", len(snap.Results), *out)
	}
	if *compare != "" {
		if regressed := compareSnapshots(snap, *compare, *tolerance); regressed {
			os.Exit(1)
		}
	}
}

// compareSnapshots guards the fresh snapshot against a reference file:
// any benchmark in both that is more than tolerance percent slower on
// ns/op is a regression. Returns true when at least one regressed.
func compareSnapshots(snap snapshot, refPath string, tolerance float64) bool {
	raw, err := os.ReadFile(refPath)
	if err != nil {
		log.Fatalf("compare: %v", err)
	}
	var ref snapshot
	if err := json.Unmarshal(raw, &ref); err != nil {
		log.Fatalf("compare: parsing %s: %v", refPath, err)
	}
	refByName := map[string]result{}
	for _, r := range ref.Results {
		refByName[r.Name] = r
	}
	regressed := false
	for _, r := range snap.Results {
		base, ok := refByName[r.Name]
		if !ok {
			fmt.Printf("benchsnap: %s: new benchmark (no reference)\n", r.Name)
			continue
		}
		delete(refByName, r.Name)
		if base.NsPerOp <= 0 {
			continue
		}
		deltaPct := (r.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		status := "ok"
		if deltaPct > tolerance {
			status = "REGRESSION"
			regressed = true
		}
		fmt.Printf("benchsnap: %s: %.0f ns/op vs %.0f reference (%+.1f%%, tolerance %.0f%%) %s\n",
			r.Name, r.NsPerOp, base.NsPerOp, deltaPct, tolerance, status)
	}
	for name := range refByName {
		fmt.Printf("benchsnap: %s: in reference but not in this run\n", name)
	}
	return regressed
}
