// Command contention runs the paper's benchmark experiments on the
// simulated Blue Gene/Q machines: the bisection-pairing benchmark
// (Figures 3, 4), the Strassen-Winograd matrix-multiplication
// experiment (Table 3, Figure 5) and the strong-scaling study
// (Table 4, Figure 6).
//
// Usage:
//
//	contention                       # run everything
//	contention -experiment pairing   # Figures 3 and 4
//	contention -experiment matmul    # Table 3 and Figure 5
//	contention -experiment scaling   # Table 4 and Figure 6
//	contention -full                 # simulate every pairing round
//	contention -chart                # ASCII charts as well as tables
package main

import (
	"flag"
	"fmt"
	"os"

	"netpart/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "pairing, matmul, scaling, or all")
	full := flag.Bool("full", false, "simulate every pairing round (slower; identical results in the fluid model)")
	chart := flag.Bool("chart", false, "render ASCII charts")
	flag.Parse()

	run := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	if run("pairing") {
		ran = true
		for _, gen := range []func(bool) (experiments.PairingFigure, error){experiments.Figure3, experiments.Figure4} {
			fig, err := gen(*full)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(fig.Table().Render())
			if *chart {
				fmt.Print(fig.Chart().Render())
			}
			fmt.Printf("max contention-bound speedup: %.2fx\n\n", fig.MaxSpeedup())
		}
	}
	if run("matmul") {
		ran = true
		fmt.Print(experiments.Table3().Render())
		fmt.Println()
		fig, err := experiments.Figure5()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(fig.Table().Render())
		if *chart {
			fmt.Print(fig.Chart().Render())
		}
		fmt.Println()
	}
	if run("scaling") {
		ran = true
		fmt.Print(experiments.Table4().Render())
		fmt.Println()
		fig, err := experiments.Figure6()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(fig.Table().Render())
		if *chart {
			fmt.Print(fig.Chart().Render())
		}
		if fig.PointsA[0].Prediction.MemoryBound {
			fmt.Println("note: the 2-midplane run exceeds the combined L2 capacity (the paper's §4.3 super-linear anomaly)")
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "contention: unknown experiment %q (want pairing, matmul, scaling, all)\n", *experiment)
		os.Exit(2)
	}
}
