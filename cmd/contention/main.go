// Command contention runs the paper's benchmark experiments on the
// simulated Blue Gene/Q machines: the bisection-pairing benchmark
// (Figures 3, 4), the Strassen-Winograd matrix-multiplication
// experiment (Table 3, Figure 5) and the strong-scaling study
// (Table 4, Figure 6), through the netpart experiment registry.
//
// Usage:
//
//	contention                       # run everything
//	contention -experiment pairing   # Figures 3 and 4
//	contention -experiment matmul    # Table 3 and Figure 5
//	contention -experiment scaling   # Table 4 and Figure 6
//	contention -run figure3          # one registered artifact by ID
//	contention -full                 # simulate every pairing round
//	contention -workers 4            # bound the worker pool
//	contention -chart                # ASCII charts as well as tables
//	contention -json                 # machine-readable results
//	contention -progress             # per-point progress on stderr
//
// Interrupting the process (Ctrl-C) cancels the in-flight simulation
// promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"netpart"
)

// suites maps the historical -experiment groups onto registry IDs.
var suites = map[string][]string{
	"pairing": {"figure3", "figure4"},
	"matmul":  {"table3", "figure5"},
	"scaling": {"table4", "figure6"},
	"all":     {"figure3", "figure4", "table3", "figure5", "table4", "figure6"},
}

func main() {
	experiment := flag.String("experiment", "all", "pairing, matmul, scaling, or all")
	runID := flag.String("run", "", "run one registered experiment by ID (overrides -experiment)")
	full := flag.Bool("full", false, "simulate every pairing round (slower; identical results in the fluid model)")
	workers := flag.Int("workers", 0, "worker pool bound (0 = all CPUs, 1 = sequential)")
	chart := flag.Bool("chart", false, "render ASCII charts")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of rendered tables")
	progress := flag.Bool("progress", false, "report per-point progress on stderr")
	flag.Parse()

	ids, ok := suites[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "contention: unknown experiment %q (want pairing, matmul, scaling, all)\n", *experiment)
		os.Exit(2)
	}
	if *runID != "" {
		ids = []string{*runID}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []netpart.Option{netpart.WithWorkers(*workers), netpart.WithFullRounds(*full)}
	if *progress {
		opts = append(opts, netpart.WithProgress(func(p netpart.Progress) {
			fmt.Fprintf(os.Stderr, "%s: %d/%d\n", p.Experiment, p.Done, p.Total)
		}))
	}
	runner := netpart.NewRunner(opts...)

	for _, id := range ids {
		res, err := runner.Run(ctx, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "contention:", err)
			os.Exit(1)
		}
		if *jsonOut {
			js, err := res.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "contention:", err)
				os.Exit(1)
			}
			os.Stdout.Write(js)
			fmt.Println()
			continue
		}
		fmt.Print(res.Table.Render())
		if *chart && res.Chart != nil {
			fmt.Print(res.Chart.Render())
		}
		switch fig := res.Data.(type) {
		case netpart.PairingFigure:
			fmt.Printf("max contention-bound speedup: %.2fx\n", fig.MaxSpeedup())
		case netpart.MatmulFigure:
			if res.Experiment.ID == "figure6" && fig.PointsA[0].Prediction.MemoryBound {
				fmt.Println("note: the 2-midplane run exceeds the combined L2 capacity (the paper's §4.3 super-linear anomaly)")
			}
		}
		fmt.Println()
	}
}
