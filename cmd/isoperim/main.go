// Command isoperim is a general edge-isoperimetric calculator for the
// network topologies of the paper's §5: tori (Theorem 3.1 bound plus
// exact cuboid search), hypercubes (Harper), HyperX clique products
// (Lindsey) and 2D meshes (brute force).
//
// Usage:
//
//	isoperim -topology torus -dims 16x16x12x8x2 -t 24576
//	isoperim -topology hypercube -d 10 -t 341
//	isoperim -topology hyperx -dims 16x6 -t 48
//	isoperim -topology mesh -dims 6x4 -t 12      # exact, small only
//	isoperim -topology torus -dims 8x8x4 -bisection
package main

import (
	"flag"
	"fmt"
	"os"

	"netpart/internal/iso"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

func main() {
	topology := flag.String("topology", "torus", "torus, hypercube, hyperx, mesh")
	dims := flag.String("dims", "", "dimensions, e.g. 16x16x12x8x2")
	d := flag.Int("d", 0, "hypercube dimension")
	t := flag.Int("t", 0, "subset size")
	bisection := flag.Bool("bisection", false, "compute the bisection instead of a subset size")
	flag.Parse()

	if err := run(*topology, *dims, *d, *t, *bisection); err != nil {
		fmt.Fprintln(os.Stderr, "isoperim:", err)
		os.Exit(1)
	}
}

func run(topology, dimsStr string, d, t int, bisection bool) error {
	switch topology {
	case "torus":
		sh, err := torus.ParseShape(dimsStr)
		if err != nil {
			return err
		}
		if bisection {
			t = sh.Volume() / 2
		}
		if t < 1 {
			return fmt.Errorf("need -t or -bisection")
		}
		fmt.Printf("torus %s, |V| = %d, subset size t = %d\n", sh, sh.Volume(), t)
		if t <= sh.Volume()/2 {
			bound, r := iso.TorusBound(sh, t)
			fmt.Printf("Theorem 3.1 bound: %.3f (minimizing r = %d)\n", bound, r)
			if att, ok := iso.AttainingCuboid(sh, t); ok {
				fmt.Printf("attaining cuboid S_r: %s\n", att)
			}
		}
		res, err := iso.MinCuboidPerimeter(sh, t)
		if err != nil {
			fmt.Printf("exact cuboid search: %v\n", err)
		} else {
			fmt.Printf("optimal cuboid: %s with perimeter %d\n", res.Lens, res.Perimeter)
		}
		return nil

	case "hypercube":
		if d < 1 {
			return fmt.Errorf("need -d for hypercube")
		}
		if bisection {
			t = 1 << uint(d-1)
		}
		per, err := iso.HarperPerimeter(d, t)
		if err != nil {
			return err
		}
		fmt.Printf("hypercube Q%d, |V| = %d, t = %d\n", d, 1<<uint(d), t)
		fmt.Printf("Harper minimum perimeter: %d\n", per)
		return nil

	case "hyperx":
		sh, err := torus.ParseShape(dimsStr)
		if err != nil {
			return err
		}
		if bisection {
			t = sh.Volume() / 2
		}
		per, err := iso.LindseyPerimeter(sh, t)
		if err != nil {
			return err
		}
		fmt.Printf("HyperX K%s, |V| = %d, t = %d\n", sh, sh.Volume(), t)
		fmt.Printf("Lindsey minimum perimeter: %d\n", per)
		bi, err := iso.HyperXBisection(sh)
		if err == nil {
			fmt.Printf("bisection: %d\n", bi)
		}
		return nil

	case "mesh":
		sh, err := torus.ParseShape(dimsStr)
		if err != nil {
			return err
		}
		if len(sh) != 2 {
			return fmt.Errorf("mesh needs 2 dimensions")
		}
		g, err := topo.Mesh2D(sh[0], sh[1])
		if err != nil {
			return err
		}
		if bisection {
			t = g.N() / 2
		}
		per, set, err := g.MinPerimeter(t)
		if err != nil {
			return err
		}
		fmt.Printf("mesh %s, |V| = %d, t = %d\n", sh, g.N(), t)
		fmt.Printf("exact minimum perimeter: %.0f\n", per)
		fmt.Print("an optimal subset: ")
		for v, in := range set {
			if in {
				fmt.Printf("%d ", v)
			}
		}
		fmt.Println()
		return nil

	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
}
