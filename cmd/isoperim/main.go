// Command isoperim is a general edge-isoperimetric calculator for the
// network topologies of the paper's §5: tori (Theorem 3.1 bound plus
// exact cuboid search), hypercubes (Harper), HyperX clique products
// (Lindsey) and 2D meshes (brute force). Results are emitted as a
// tabulate table, so they render as text or serialize as JSON/CSV.
//
// Usage:
//
//	isoperim -topology torus -dims 16x16x12x8x2 -t 24576
//	isoperim -topology hypercube -d 10 -t 341
//	isoperim -topology hyperx -dims 16x6 -t 48
//	isoperim -topology mesh -dims 6x4 -t 12      # exact, small only
//	isoperim -topology torus -dims 8x8x4 -bisection
//	isoperim -topology torus -dims 8x8x4 -bisection -json
package main

import (
	"flag"
	"fmt"
	"os"

	"netpart/internal/iso"
	"netpart/internal/tabulate"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

func main() {
	topology := flag.String("topology", "torus", "torus, hypercube, hyperx, mesh")
	dims := flag.String("dims", "", "dimensions, e.g. 16x16x12x8x2")
	d := flag.Int("d", 0, "hypercube dimension")
	t := flag.Int("t", 0, "subset size")
	bisection := flag.Bool("bisection", false, "compute the bisection instead of a subset size")
	jsonOut := flag.Bool("json", false, "emit the result table as JSON")
	csvOut := flag.Bool("csv", false, "emit the result table as CSV")
	flag.Parse()

	tab, err := run(*topology, *dims, *d, *t, *bisection)
	if err != nil {
		fmt.Fprintln(os.Stderr, "isoperim:", err)
		os.Exit(1)
	}
	switch {
	case *jsonOut:
		js, err := tab.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "isoperim:", err)
			os.Exit(1)
		}
		os.Stdout.Write(js)
		fmt.Println()
	case *csvOut:
		cs, err := tab.CSV()
		if err != nil {
			fmt.Fprintln(os.Stderr, "isoperim:", err)
			os.Exit(1)
		}
		os.Stdout.Write(cs)
	default:
		fmt.Print(tab.Render())
	}
}

// run computes the requested isoperimetric quantities as a two-column
// table of (quantity, value) rows.
func run(topology, dimsStr string, d, t int, bisection bool) (tabulate.Table, error) {
	tab := tabulate.Table{Headers: []string{"quantity", "value"}}
	switch topology {
	case "torus":
		sh, err := torus.ParseShape(dimsStr)
		if err != nil {
			return tab, err
		}
		if bisection {
			t = sh.Volume() / 2
		}
		if t < 1 {
			return tab, fmt.Errorf("need -t or -bisection")
		}
		tab.Title = fmt.Sprintf("torus %s, |V| = %d, subset size t = %d", sh, sh.Volume(), t)
		if t <= sh.Volume()/2 {
			bound, r := iso.TorusBound(sh, t)
			tab.AddRow("Theorem 3.1 bound", fmt.Sprintf("%.3f (minimizing r = %d)", bound, r))
			if att, ok := iso.AttainingCuboid(sh, t); ok {
				tab.AddRow("attaining cuboid S_r", att.String())
			}
		}
		res, err := iso.MinCuboidPerimeter(sh, t)
		if err != nil {
			tab.AddRow("exact cuboid search", err.Error())
		} else {
			tab.AddRow("optimal cuboid", res.Lens.String())
			tab.AddRow("optimal cuboid perimeter", res.Perimeter)
		}
		return tab, nil

	case "hypercube":
		if d < 1 {
			return tab, fmt.Errorf("need -d for hypercube")
		}
		if bisection {
			t = 1 << uint(d-1)
		}
		per, err := iso.HarperPerimeter(d, t)
		if err != nil {
			return tab, err
		}
		tab.Title = fmt.Sprintf("hypercube Q%d, |V| = %d, t = %d", d, 1<<uint(d), t)
		tab.AddRow("Harper minimum perimeter", per)
		return tab, nil

	case "hyperx":
		sh, err := torus.ParseShape(dimsStr)
		if err != nil {
			return tab, err
		}
		if bisection {
			t = sh.Volume() / 2
		}
		per, err := iso.LindseyPerimeter(sh, t)
		if err != nil {
			return tab, err
		}
		tab.Title = fmt.Sprintf("HyperX K%s, |V| = %d, t = %d", sh, sh.Volume(), t)
		tab.AddRow("Lindsey minimum perimeter", per)
		if bi, err := iso.HyperXBisection(sh); err == nil {
			tab.AddRow("bisection", bi)
		}
		return tab, nil

	case "mesh":
		sh, err := torus.ParseShape(dimsStr)
		if err != nil {
			return tab, err
		}
		if len(sh) != 2 {
			return tab, fmt.Errorf("mesh needs 2 dimensions")
		}
		g, err := topo.Mesh2D(sh[0], sh[1])
		if err != nil {
			return tab, err
		}
		if bisection {
			t = g.N() / 2
		}
		per, set, err := g.MinPerimeter(t)
		if err != nil {
			return tab, err
		}
		tab.Title = fmt.Sprintf("mesh %s, |V| = %d, t = %d", sh, g.N(), t)
		tab.AddRow("exact minimum perimeter", per)
		subset := ""
		for v, in := range set {
			if in {
				subset += fmt.Sprintf("%d ", v)
			}
		}
		tab.AddRow("an optimal subset", subset)
		return tab, nil

	default:
		return tab, fmt.Errorf("unknown topology %q", topology)
	}
}
