// Command netpartd serves the netpart experiment registry over HTTP:
// the /v1 REST surface of internal/serve (registry listing,
// synchronous cached results, asynchronous runs with SSE progress
// streams, user-defined scenarios, parameter-grid sweeps, and
// trace-driven scheduling simulations), with per-cost-class admission
// control and request coalescing in front of the Runner.
//
// Usage:
//
//	netpartd [-addr :8080] [-workers 0] [-run-timeout 10m]
//	         [-cheap 16] [-moderate 4] [-heavy 1] [-grace 30s]
//	         [-store-dir DIR] [-store-max-bytes N]
//	         [-peers http://h1:8080,http://h2:8080] [-peer-timeout 2m]
//	         [-peer-probe 15s]
//	         [-cluster-sessions 32] [-cluster-idle 10m]
//	         [-log-format text|json] [-log-level info] [-pprof]
//
// With -store-dir, finished dynamic results (scenarios, sweeps,
// traces) persist to a content-addressed blob store in DIR: the next
// netpartd on the same directory warm-starts, serving them over
// GET /v1/archive/{hash} byte-identically without recomputing.
// -store-max-bytes bounds the directory (oldest-access blobs are
// evicted past it; 0 means unbounded).
//
// With -peers, the daemon is a coordinator: sweep and trace-grid
// points fan out to the listed worker netpartds (sharded by point
// content hash, coalesced on each worker, recomputed locally when a
// peer fails or exceeds -peer-timeout). A failed peer is marked
// unhealthy and skipped until a background /v1/healthz probe restores
// it. Output bytes are identical to single-process execution
// regardless of fleet health.
//
// POST /v1/cluster opens a live simulated-cluster session: jobs
// stream in over POST /v1/cluster/{id}/jobs (idempotent by client job
// ID), GET snapshots it, GET .../events streams engine events as SSE,
// and DELETE drains the remaining schedule and returns the final
// metrics. -cluster-sessions bounds how many sessions are open at
// once; sessions untouched for -cluster-idle are reaped (0 disables).
//
// The daemon logs the bound address on startup ("listening on ..."),
// so -addr 127.0.0.1:0 works for smoke tests that need a free port.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight jobs get -grace to finish, stragglers are canceled, and
// outstanding store writes complete.
//
// Observability: GET /metrics serves the daemon's metric registry in
// Prometheus text exposition format (request latency histograms,
// admission queue waits, cache/store/peer/cluster counters), and
// GET /v1/healthz embeds the same registry as JSON. Every request
// carries an X-Netpart-Request-Id (honored when the client sends one,
// generated otherwise), echoed on the response, attached to log
// lines, and propagated to workers on coordinator dispatch — grep one
// ID across a fleet's logs to follow one sweep. Logs are structured
// (log/slog): -log-format picks text or json, -log-level the floor
// (debug enables per-request access lines). -pprof mounts the
// net/http/pprof handlers under /debug/pprof/ (off by default: the
// profile endpoints are a diagnostic surface, not a public API).
//
// Quick tour:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/experiments?cost=cheap
//	curl -s localhost:8080/v1/experiments/table6/result?format=markdown
//	curl -s -X POST localhost:8080/v1/runs -d '{"experiment":"figure3"}'
//	curl -N localhost:8080/v1/runs/run-000001/events
//	curl -s -X POST localhost:8080/v1/scenarios -d '{
//	  "topology": {"kind": "torus", "shape": "8x8x4"},
//	  "workload": {"pattern": "adversarial"}}'
//	curl -s -X POST localhost:8080/v1/sweeps -d '{
//	  "name": "policy sweep",
//	  "base": {"topology": {"kind": "partition", "machine": "juqueen", "midplanes": 4},
//	           "workload": {"pattern": "pairing"}},
//	  "axes": [{"path": "topology.policy", "values": ["best-case", "worst-case", "first-fit"]},
//	           {"path": "workload.pattern", "values": ["pairing", "neighbor"]}]}'
//	curl -N localhost:8080/v1/sweeps/sweep-000001/events
//	curl -s localhost:8080/v1/sweeps/sweep-000001?format=markdown
//	curl -s -X POST localhost:8080/v1/traces -d '{
//	  "machine": "juqueen", "policy": "contention-aware", "backfill": true,
//	  "synthetic": {"jobs": 120, "rate_hz": 0.08,
//	                "pattern": "pairing", "pattern_fraction": 0.5}}'
//	curl -N localhost:8080/v1/traces/trace-000001/events
//	curl -s localhost:8080/v1/traces/trace-000001?format=markdown
//	curl -s -X POST localhost:8080/v1/cluster -d '{
//	  "machine": "juqueen", "policy": "contention-aware", "backfill": true}'
//	curl -s -X POST localhost:8080/v1/cluster/cluster-000001/jobs -d '{
//	  "jobs": [{"id": "job-a", "midplanes": 8, "runtime_sec": 600, "pattern": "pairing"}]}'
//	curl -N localhost:8080/v1/cluster/cluster-000001/events
//	curl -s -X DELETE localhost:8080/v1/cluster/cluster-000001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"netpart"
	"netpart/internal/serve"
	"netpart/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
	workers := flag.Int("workers", 0, "default worker-pool bound per run (0 = all CPUs)")
	runTimeout := flag.Duration("run-timeout", serve.DefaultRunTimeout, "per-run deadline (0 disables)")
	cheap := flag.Int("cheap", serve.DefaultAdmission[netpart.CostCheap], "max concurrent cheap runs")
	moderate := flag.Int("moderate", serve.DefaultAdmission[netpart.CostModerate], "max concurrent moderate runs")
	heavy := flag.Int("heavy", serve.DefaultAdmission[netpart.CostHeavy], "max concurrent heavy runs")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace for in-flight jobs")
	storeDir := flag.String("store-dir", "", "persist results to this directory (empty disables)")
	storeMax := flag.Int64("store-max-bytes", 0, "store byte budget, LRU-evicted past it (0 = unbounded)")
	peers := flag.String("peers", "", "comma-separated worker base URLs; makes this daemon a coordinator")
	peerTimeout := flag.Duration("peer-timeout", serve.DefaultPeerTimeout, "per-point peer dispatch deadline (0 disables)")
	peerProbe := flag.Duration("peer-probe", serve.DefaultPeerProbeInterval, "re-probe interval for unhealthy peers")
	clusterSessions := flag.Int("cluster-sessions", serve.DefaultClusterSessions, "max concurrently open cluster sessions")
	clusterIdle := flag.Duration("cluster-idle", serve.DefaultClusterIdleTimeout, "reap cluster sessions untouched this long (0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn, or error (debug enables per-request access lines)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()
	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartd:", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}
	if *runTimeout == 0 {
		*runTimeout = -1 // flag 0 means no deadline; Options 0 means default
	}
	if *peerTimeout == 0 {
		*peerTimeout = -1
	}
	if *clusterIdle == 0 {
		*clusterIdle = -1 // flag 0 disables reaping; Options 0 means default
	}

	opts := serve.Options{
		Workers:    *workers,
		RunTimeout: *runTimeout,
		Admission: map[netpart.Cost]int{
			netpart.CostCheap:    *cheap,
			netpart.CostModerate: *moderate,
			netpart.CostHeavy:    *heavy,
		},
		PeerTimeout:        *peerTimeout,
		PeerProbeInterval:  *peerProbe,
		ClusterSessions:    *clusterSessions,
		ClusterIdleTimeout: *clusterIdle,
		Logger:             log,
	}
	if *storeDir != "" {
		fs, err := store.OpenFS(*storeDir, *storeMax)
		if err != nil {
			fatal("store open failed", "dir", *storeDir, "err", err)
		}
		st := fs.Stats()
		log.Info(fmt.Sprintf("store: %s (%d blobs, %d bytes)", fs.Dir(), st.Entries, st.Bytes))
		opts.Store = fs
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			opts.Peers = append(opts.Peers, strings.TrimRight(p, "/"))
		}
	}
	if len(opts.Peers) > 0 {
		log.Info(fmt.Sprintf("coordinator mode: %d peers", len(opts.Peers)))
	}

	srv := serve.New(opts)
	handler := srv.Handler()
	if *pprofOn {
		// Mount the profile handlers explicitly on a wrapper mux rather
		// than importing net/http/pprof for its DefaultServeMux side
		// effect: the daemon never serves DefaultServeMux, and the
		// endpoints stay opt-in.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Info("pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	log.Info(fmt.Sprintf("listening on %s (%d experiments registered)", ln.Addr(), len(netpart.Registry())))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case err := <-done:
		fatal("serve failed", "err", err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain jobs and connections concurrently: an open SSE stream only
	// goes idle once its job finishes, so draining jobs first (not
	// after) is what lets httpSrv.Shutdown complete within the grace.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
			log.Warn("job drain incomplete, stragglers canceled", "err", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Warn("http shutdown", "err", err)
		}
	}()
	wg.Wait()
	log.Info("bye")
}

// newLogger builds the daemon logger from the -log-format and
// -log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, hopts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}
