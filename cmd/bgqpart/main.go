// Command bgqpart analyzes Blue Gene/Q partition geometries: it prints
// the paper's partition tables (1, 2, 5, 6, 7), the bandwidth figures
// (1, 2, 7), and per-size geometry recommendations for any cataloged
// machine.
//
// Usage:
//
//	bgqpart                      # print every table and figure
//	bgqpart -table 1             # one table (1, 2, 5, 6, 7)
//	bgqpart -figure 2            # one figure (1, 2, 7)
//	bgqpart -machine juqueen -midplanes 24   # analyze one request
//	bgqpart -machine mira -list  # list feasible sizes and geometries
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"netpart/internal/bgq"
	"netpart/internal/experiments"
)

func main() {
	machine := flag.String("machine", "mira", "machine: mira, juqueen, sequoia, juqueen48, juqueen54")
	table := flag.Int("table", 0, "print one paper table (1, 2, 5, 6, 7)")
	figure := flag.Int("figure", 0, "print one paper figure (1, 2, 7)")
	midplanes := flag.Int("midplanes", 0, "analyze one allocation size (midplanes)")
	list := flag.Bool("list", false, "list all feasible sizes with best/worst geometries")
	chart := flag.Bool("chart", false, "render figures as ASCII charts instead of tables")
	jsonOut := flag.Bool("json", false, "emit the machine analysis as JSON (with -list or -midplanes)")
	sequoia := flag.Bool("sequoia", false, "print the Sequoia analysis (paper §5)")
	others := flag.Bool("others", false, "print the other-topologies analysis (paper §5)")
	flag.Parse()

	m, err := lookupMachine(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch {
	case *sequoia:
		fmt.Print(experiments.SequoiaAnalysis().Render())
	case *others:
		fmt.Print(experiments.OtherTopologies().Render())
	case *table != 0:
		printTable(*table)
	case *figure != 0:
		printFigure(*figure, *chart)
	case *jsonOut:
		emitJSON(m, *midplanes)
	case *midplanes != 0:
		analyzeSize(m, *midplanes)
	case *list:
		listSizes(m)
	default:
		for _, t := range []int{1, 2, 5, 6, 7} {
			printTable(t)
			fmt.Println()
		}
		for _, f := range []int{1, 2, 7} {
			printFigure(f, *chart)
			fmt.Println()
		}
	}
}

func lookupMachine(name string) (*bgq.Machine, error) {
	switch strings.ToLower(name) {
	case "mira":
		return bgq.Mira(), nil
	case "juqueen":
		return bgq.Juqueen(), nil
	case "sequoia":
		return bgq.Sequoia(), nil
	case "juqueen48", "juqueen-48":
		return bgq.Juqueen48(), nil
	case "juqueen54", "juqueen-54":
		return bgq.Juqueen54(), nil
	default:
		return nil, fmt.Errorf("bgqpart: unknown machine %q", name)
	}
}

func printTable(n int) {
	switch n {
	case 1:
		fmt.Print(experiments.Table1().Render())
	case 2:
		fmt.Print(experiments.Table2().Render())
	case 5:
		fmt.Print(experiments.Table5().Render())
	case 6:
		fmt.Print(experiments.Table6().Render())
	case 7:
		fmt.Print(experiments.Table7().Render())
	default:
		fmt.Fprintf(os.Stderr, "bgqpart: no partition table %d (3 and 4 belong to cmd/contention)\n", n)
		os.Exit(2)
	}
}

func printFigure(n int, chart bool) {
	var f experiments.BWFigure
	switch n {
	case 1:
		f = experiments.Figure1()
	case 2:
		f = experiments.Figure2()
	case 7:
		f = experiments.Figure7()
	default:
		fmt.Fprintf(os.Stderr, "bgqpart: no bandwidth figure %d (3-6 belong to cmd/contention)\n", n)
		os.Exit(2)
	}
	if chart {
		fmt.Print(f.Chart().Render())
	} else {
		fmt.Print(f.Table().Render())
	}
}

func analyzeSize(m *bgq.Machine, midplanes int) {
	fmt.Println(m)
	geoms := m.Geometries(midplanes)
	if len(geoms) == 0 {
		fmt.Printf("no %d-midplane cuboid fits this machine\n", midplanes)
		os.Exit(1)
	}
	best, _ := m.Best(midplanes)
	worst, _ := m.Worst(midplanes)
	fmt.Printf("\n%d midplanes (%d nodes): %d feasible geometries\n", midplanes, midplanes*bgq.MidplaneNodes, len(geoms))
	for _, g := range geoms {
		marks := ""
		if g.Equal(best) {
			marks += "  <- best"
		}
		if g.Equal(worst) && !best.Equal(worst) {
			marks += "  <- worst"
		}
		fmt.Printf("  %-12s bisection %5d links (%6.1f GB/s)%s\n", g, g.BisectionBW(), g.BisectionGBps(), marks)
	}
	if cur, ok := m.Predefined(midplanes); ok {
		fmt.Printf("\nscheduler's predefined geometry: %s (bisection %d)\n", cur, cur.BisectionBW())
		if prop, improved := m.Proposed(midplanes); improved {
			fmt.Printf("proposed geometry: %s (bisection %d) — contention-bound speedup up to %.2fx\n",
				prop, prop.BisectionBW(), float64(prop.BisectionBW())/float64(cur.BisectionBW()))
		} else {
			fmt.Println("the predefined geometry is already optimal")
		}
	} else if !best.Equal(worst) {
		fmt.Printf("\nrequest geometry %s explicitly: a size-only request may receive %s (%.2fx slower when contention-bound)\n",
			best, worst, float64(best.BisectionBW())/float64(worst.BisectionBW()))
	}
}

// sizeReport is the JSON shape of one allocation size's analysis.
type sizeReport struct {
	Midplanes  int             `json:"midplanes"`
	Nodes      int             `json:"nodes"`
	Geometries []bgq.Partition `json:"geometries"`
	Best       bgq.Partition   `json:"best"`
	Worst      bgq.Partition   `json:"worst"`
	Predefined *bgq.Partition  `json:"predefined,omitempty"`
	Proposed   *bgq.Partition  `json:"proposed,omitempty"`
}

func emitJSON(m *bgq.Machine, midplanes int) {
	sizes := m.FeasibleSizes()
	if midplanes != 0 {
		sizes = []int{midplanes}
	}
	out := struct {
		Machine string       `json:"machine"`
		Grid    string       `json:"grid"`
		Nodes   int          `json:"nodes"`
		Sizes   []sizeReport `json:"sizes"`
	}{Machine: m.Name, Grid: m.Grid.String(), Nodes: m.Nodes()}
	for _, s := range sizes {
		geoms := m.Geometries(s)
		if len(geoms) == 0 {
			fmt.Fprintf(os.Stderr, "bgqpart: no %d-midplane cuboid fits %s\n", s, m.Name)
			os.Exit(1)
		}
		best, _ := m.Best(s)
		worst, _ := m.Worst(s)
		rep := sizeReport{Midplanes: s, Nodes: s * bgq.MidplaneNodes, Geometries: geoms, Best: best, Worst: worst}
		if p, ok := m.Predefined(s); ok {
			rep.Predefined = &p
		}
		if p, ok := m.Proposed(s); ok {
			rep.Proposed = &p
		}
		out.Sizes = append(out.Sizes, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bgqpart:", err)
		os.Exit(1)
	}
}

func listSizes(m *bgq.Machine) {
	fmt.Println(m)
	for _, s := range m.FeasibleSizes() {
		best, _ := m.Best(s)
		worst, _ := m.Worst(s)
		if best.Equal(worst) {
			fmt.Printf("  %3d midplanes: %-12s bisection %5d\n", s, best, best.BisectionBW())
			continue
		}
		fmt.Printf("  %3d midplanes: best %-12s %5d | worst %-12s %5d\n",
			s, best, best.BisectionBW(), worst, worst.BisectionBW())
	}
}
