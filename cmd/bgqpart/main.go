// Command bgqpart analyzes Blue Gene/Q partition geometries: it prints
// the paper's partition tables (1, 2, 5, 6, 7), the bandwidth figures
// (1, 2, 7), and per-size geometry recommendations for any cataloged
// machine. Tables and figures run through the netpart experiment
// registry; Ctrl-C cancels in-flight sweeps.
//
// Usage:
//
//	bgqpart                      # print every table and figure
//	bgqpart -table 1             # one table (1, 2, 5, 6, 7)
//	bgqpart -figure 2            # one figure (1, 2, 7)
//	bgqpart -experiments         # list the registered experiment IDs
//	bgqpart -machine juqueen -midplanes 24   # analyze one request
//	bgqpart -machine mira -list  # list feasible sizes and geometries
//	bgqpart -table 6 -json       # emit an artifact as JSON
//	bgqpart -table 6 -csv        # ... or CSV
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"netpart"
	"netpart/internal/bgq"
	"netpart/internal/experiments"
)

func main() {
	machine := flag.String("machine", "mira", "machine: mira, juqueen, sequoia, juqueen48, juqueen54")
	table := flag.Int("table", 0, "print one paper table (1, 2, 5, 6, 7)")
	figure := flag.Int("figure", 0, "print one paper figure (1, 2, 7)")
	midplanes := flag.Int("midplanes", 0, "analyze one allocation size (midplanes)")
	list := flag.Bool("list", false, "list all feasible sizes with best/worst geometries")
	listExp := flag.Bool("experiments", false, "list the registered experiment IDs")
	chart := flag.Bool("chart", false, "render figures as ASCII charts instead of tables")
	jsonOut := flag.Bool("json", false, "emit JSON (artifacts, or the machine analysis with -list/-midplanes)")
	csvOut := flag.Bool("csv", false, "emit artifacts as CSV (with -table or -figure)")
	workers := flag.Int("workers", 0, "worker pool bound (0 = all CPUs)")
	sequoia := flag.Bool("sequoia", false, "print the Sequoia analysis (paper §5)")
	others := flag.Bool("others", false, "print the other-topologies analysis (paper §5)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := netpart.NewRunner(netpart.WithWorkers(*workers))

	m, err := lookupMachine(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch {
	case *listExp:
		for _, exp := range netpart.Registry() {
			fmt.Printf("%-9s %-8s %-9s %s\n", exp.ID, exp.Kind, exp.Cost, exp.Title)
		}
	case *sequoia:
		tab, err := experiments.Config{Workers: *workers}.SequoiaAnalysis(ctx)
		check(err)
		printTable(tab, *jsonOut, *csvOut)
	case *others:
		tab, err := experiments.Config{Workers: *workers}.OtherTopologies(ctx)
		check(err)
		printTable(tab, *jsonOut, *csvOut)
	case *table != 0:
		printArtifact(ctx, runner, fmt.Sprintf("table%d", *table), *chart, *jsonOut, *csvOut)
	case *figure != 0:
		printArtifact(ctx, runner, fmt.Sprintf("figure%d", *figure), *chart, *jsonOut, *csvOut)
	case *jsonOut:
		emitJSON(m, *midplanes)
	case *midplanes != 0:
		analyzeSize(m, *midplanes)
	case *list:
		listSizes(m)
	default:
		for _, n := range []int{1, 2, 5, 6, 7} {
			printArtifact(ctx, runner, fmt.Sprintf("table%d", n), *chart, false, false)
			fmt.Println()
		}
		for _, n := range []int{1, 2, 7} {
			printArtifact(ctx, runner, fmt.Sprintf("figure%d", n), *chart, false, false)
			fmt.Println()
		}
	}
}

// printArtifact runs one registered experiment and renders it in the
// requested form. The partition artifacts (tables 1/2/5/6/7, figures
// 1/2/7) belong to this tool; 3-6 belong to cmd/contention.
func printArtifact(ctx context.Context, runner *netpart.Runner, id string, chart, jsonOut, csvOut bool) {
	switch id {
	case "table3", "table4", "figure3", "figure4", "figure5", "figure6":
		fmt.Fprintf(os.Stderr, "bgqpart: %s belongs to cmd/contention\n", id)
		os.Exit(2)
	}
	res, err := runner.Run(ctx, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgqpart:", err)
		os.Exit(1)
	}
	switch {
	case jsonOut:
		js, err := res.JSON()
		check(err)
		os.Stdout.Write(js)
		fmt.Println()
	case csvOut:
		cs, err := res.CSV()
		check(err)
		os.Stdout.Write(cs)
	case chart && res.Chart != nil:
		fmt.Print(res.Chart.Render())
	default:
		fmt.Print(res.Table.Render())
	}
}

// printTable renders a standalone table in the requested encoding.
func printTable(tab netpart.Table, jsonOut, csvOut bool) {
	switch {
	case jsonOut:
		js, err := tab.JSON()
		check(err)
		os.Stdout.Write(js)
		fmt.Println()
	case csvOut:
		cs, err := tab.CSV()
		check(err)
		os.Stdout.Write(cs)
	default:
		fmt.Print(tab.Render())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgqpart:", err)
		os.Exit(1)
	}
}

// lookupMachine resolves the -machine flag through the experiments
// catalog resolver (one source of truth for machine names), accepting
// the CLI's extra "juqueen-48"-style aliases.
func lookupMachine(name string) (*bgq.Machine, error) {
	canonical := strings.ReplaceAll(strings.ToLower(name), "-", "")
	m, err := experiments.DefaultMachines(canonical)
	if err != nil {
		return nil, fmt.Errorf("bgqpart: unknown machine %q", name)
	}
	return m, nil
}

func analyzeSize(m *bgq.Machine, midplanes int) {
	fmt.Println(m)
	geoms := m.Geometries(midplanes)
	if len(geoms) == 0 {
		fmt.Printf("no %d-midplane cuboid fits this machine\n", midplanes)
		os.Exit(1)
	}
	best, _ := m.Best(midplanes)
	worst, _ := m.Worst(midplanes)
	fmt.Printf("\n%d midplanes (%d nodes): %d feasible geometries\n", midplanes, midplanes*bgq.MidplaneNodes, len(geoms))
	for _, g := range geoms {
		marks := ""
		if g.Equal(best) {
			marks += "  <- best"
		}
		if g.Equal(worst) && !best.Equal(worst) {
			marks += "  <- worst"
		}
		fmt.Printf("  %-12s bisection %5d links (%6.1f GB/s)%s\n", g, g.BisectionBW(), g.BisectionGBps(), marks)
	}
	if cur, ok := m.Predefined(midplanes); ok {
		fmt.Printf("\nscheduler's predefined geometry: %s (bisection %d)\n", cur, cur.BisectionBW())
		if prop, improved := m.Proposed(midplanes); improved {
			fmt.Printf("proposed geometry: %s (bisection %d) — contention-bound speedup up to %.2fx\n",
				prop, prop.BisectionBW(), float64(prop.BisectionBW())/float64(cur.BisectionBW()))
		} else {
			fmt.Println("the predefined geometry is already optimal")
		}
	} else if !best.Equal(worst) {
		fmt.Printf("\nrequest geometry %s explicitly: a size-only request may receive %s (%.2fx slower when contention-bound)\n",
			best, worst, float64(best.BisectionBW())/float64(worst.BisectionBW()))
	}
}

// sizeReport is the JSON shape of one allocation size's analysis.
type sizeReport struct {
	Midplanes  int             `json:"midplanes"`
	Nodes      int             `json:"nodes"`
	Geometries []bgq.Partition `json:"geometries"`
	Best       bgq.Partition   `json:"best"`
	Worst      bgq.Partition   `json:"worst"`
	Predefined *bgq.Partition  `json:"predefined,omitempty"`
	Proposed   *bgq.Partition  `json:"proposed,omitempty"`
}

func emitJSON(m *bgq.Machine, midplanes int) {
	sizes := m.FeasibleSizes()
	if midplanes != 0 {
		sizes = []int{midplanes}
	}
	out := struct {
		Machine string       `json:"machine"`
		Grid    string       `json:"grid"`
		Nodes   int          `json:"nodes"`
		Sizes   []sizeReport `json:"sizes"`
	}{Machine: m.Name, Grid: m.Grid.String(), Nodes: m.Nodes()}
	for _, s := range sizes {
		geoms := m.Geometries(s)
		if len(geoms) == 0 {
			fmt.Fprintf(os.Stderr, "bgqpart: no %d-midplane cuboid fits %s\n", s, m.Name)
			os.Exit(1)
		}
		best, _ := m.Best(s)
		worst, _ := m.Worst(s)
		rep := sizeReport{Midplanes: s, Nodes: s * bgq.MidplaneNodes, Geometries: geoms, Best: best, Worst: worst}
		if p, ok := m.Predefined(s); ok {
			rep.Predefined = &p
		}
		if p, ok := m.Proposed(s); ok {
			rep.Proposed = &p
		}
		out.Sizes = append(out.Sizes, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bgqpart:", err)
		os.Exit(1)
	}
}

func listSizes(m *bgq.Machine) {
	fmt.Println(m)
	for _, s := range m.FeasibleSizes() {
		best, _ := m.Best(s)
		worst, _ := m.Worst(s)
		if best.Equal(worst) {
			fmt.Printf("  %3d midplanes: %-12s bisection %5d\n", s, best, best.BisectionBW())
			continue
		}
		fmt.Printf("  %3d midplanes: best %-12s %5d | worst %-12s %5d\n",
			s, best, best.BisectionBW(), worst, worst.BisectionBW())
	}
}
