package netpart

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netpart/internal/experiments"
	"netpart/internal/tabulate"
)

// Progress is one progress report from a running experiment: Done of
// Total units (table rows or figure points) have completed. Run is a
// process-unique token minted per Runner.Run call, so a consumer
// multiplexing progress from concurrent runs of the same experiment ID
// (an HTTP frontend streaming several in-flight runs) can tell the
// streams apart.
type Progress struct {
	Experiment string // experiment ID
	Run        string // per-run token, e.g. "figure3#17"
	Done       int
	Total      int
}

// runSeq mints process-unique run tokens.
var runSeq atomic.Uint64

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers bounds the worker pool experiments fan out on. Zero or
// negative (the default) means the runnable-CPU count; 1 forces the
// sequential path. Output is byte-identical regardless of pool size.
func WithWorkers(n int) Option { return func(r *Runner) { r.workers = n } }

// WithFullRounds makes the pairing experiments (figure3, figure4)
// simulate every communication round end-to-end instead of simulating
// one round and scaling (the rounds are identical in the fluid model,
// so results agree to floating point; full rounds cost ~26x).
func WithFullRounds(b bool) Option { return func(r *Runner) { r.fullRounds = b } }

// WithProgress installs a progress callback. Calls are serialized
// across every Run of the Runner (so a callback may update shared
// state without its own locking), but may arrive from worker
// goroutines; completion order is not row order.
func WithProgress(fn func(Progress)) Option { return func(r *Runner) { r.progress = fn } }

// withMachines substitutes the machine catalog; test-only (corrupted
// and hypothetical catalogs), hence unexported.
func withMachines(fn func(string) (*Machine, error)) Option {
	return func(r *Runner) { r.machines = fn }
}

// WithScenarioRunner substitutes the per-point scenario executor used
// by RunSweep — the seam a distributed frontend uses to dispatch grid
// points to worker daemons (and fall back to local execution on peer
// failure). The substitute must be byte-equivalent to the local
// executor for the same spec, including error strings, or sweep
// results stop being deterministic across deployments. Single-spec
// RunScenario always runs locally.
func WithScenarioRunner(fn func(ctx context.Context, spec ScenarioSpec) (*ScenarioOutcome, error)) Option {
	return func(r *Runner) { r.scenarioRun = fn }
}

// WithTraceRunner substitutes the per-point trace executor used by
// RunTraceGrid, under the same byte-equivalence contract as
// WithScenarioRunner. Single-spec RunTrace always runs locally (it
// streams per-event frames, which a remote executor cannot relay).
func WithTraceRunner(fn func(ctx context.Context, spec TraceSpec) (*TraceOutcome, error)) Option {
	return func(r *Runner) { r.traceRun = fn }
}

// Runner executes registered experiments with per-call options. The
// zero value runs with defaults; construct with NewRunner to set
// options. A Runner is configured once at construction and safe for
// concurrent use: every option is per-Runner state, not package-global
// state, so two Runners with different worker counts can run side by
// side.
type Runner struct {
	workers     int
	fullRounds  bool
	progress    func(Progress)
	machines    func(string) (*Machine, error)
	scenarioRun func(ctx context.Context, spec ScenarioSpec) (*ScenarioOutcome, error)
	traceRun    func(ctx context.Context, spec TraceSpec) (*TraceOutcome, error)

	// progressMu serializes progress callbacks across concurrent Runs
	// of this Runner (within one Run the driver already serializes).
	progressMu sync.Mutex
}

// NewRunner returns a Runner configured by the given options.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{}
	for _, o := range opts {
		o(r)
	}
	return r
}

// RunMeta records how a Result was produced. Fields that vary from
// run to run (Elapsed, resolved Workers) are deliberately excluded
// from the serialized encodings, which must be byte-deterministic.
type RunMeta struct {
	Run        string        // per-run token (matches Progress.Run)
	Workers    int           // resolved worker-pool bound
	FullRounds bool          // whether pairing rounds were simulated individually
	Elapsed    time.Duration // wall-clock time of the run
}

// Result is the uniform output of Runner.Run: the experiment
// descriptor, the rendered table (always present), the chart for
// figures, the typed figure data when there is one (BWFigure,
// PairingFigure or MatmulFigure), and run metadata.
type Result struct {
	Experiment Experiment
	Table      Table
	Chart      *Chart // nil for pure tables
	Data       any    // typed figure data; nil for pure tables
	Meta       RunMeta
}

// Run executes the experiment registered under id and returns its
// Result. The context cancels the run: the worker pool stops handing
// out rows, the pairing simulator aborts between rounds and flow
// batches, and Run returns ctx.Err().
func (r *Runner) Run(ctx context.Context, id string) (*Result, error) {
	exp, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("netpart: no experiment %q (known IDs: %v)", id, IDs())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	token := fmt.Sprintf("%s#%d", exp.ID, runSeq.Add(1))
	cfg := experiments.Config{
		Workers:    r.workers,
		FullRounds: r.fullRounds,
		Machines:   r.machines,
		RunToken:   token,
	}
	if r.progress != nil {
		fn := r.progress
		cfg.Progress = func(tok string, done, total int) {
			r.progressMu.Lock()
			defer r.progressMu.Unlock()
			fn(Progress{Experiment: exp.ID, Run: tok, Done: done, Total: total})
		}
	}
	start := time.Now()
	art, err := exp.run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Experiment: exp,
		Table:      art.table,
		Chart:      art.chart,
		Data:       art.data,
		Meta: RunMeta{
			Run:        token,
			Workers:    cfg.ResolvedWorkers(),
			FullRounds: cfg.FullRounds,
			Elapsed:    time.Since(start),
		},
	}, nil
}

// RunAll executes every registered experiment in presentation order
// and returns the results. It stops at the first error (including
// cancellation).
func (r *Runner) RunAll(ctx context.Context) ([]*Result, error) {
	results := make([]*Result, 0, len(registry))
	for _, exp := range registry {
		res, err := r.Run(ctx, exp.ID)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// resultDoc fixes the JSON shape of a Result. Run-varying metadata
// (elapsed time, resolved worker count) is excluded so the encoding is
// byte-deterministic for a given artifact and options.
type resultDoc struct {
	ID         string              `json:"id"`
	Title      string              `json:"title"`
	Kind       Kind                `json:"kind"`
	Cost       Cost                `json:"cost"`
	FullRounds bool                `json:"full_rounds"`
	Table      tabulate.TableData  `json:"table"`
	Chart      *tabulate.ChartData `json:"chart,omitempty"`
}

// JSON encodes the result as indented, byte-deterministic JSON: the
// descriptor, the table grid, and (for figures) the chart series with
// missing points as nulls.
func (res *Result) JSON() ([]byte, error) {
	doc := resultDoc{
		ID:         res.Experiment.ID,
		Title:      res.Experiment.Title,
		Kind:       res.Experiment.Kind,
		Cost:       res.Experiment.Cost,
		FullRounds: res.Meta.FullRounds,
		Table:      res.Table.Data(),
	}
	if res.Chart != nil {
		d := res.Chart.Data()
		doc.Chart = &d
	}
	return json.MarshalIndent(doc, "", "  ")
}

// CSV encodes the result's table as RFC 4180 CSV (header record plus
// data rows), byte-deterministically. For figures, the chart series
// are also available via Result.Chart.CSV().
func (res *Result) CSV() ([]byte, error) {
	return res.Table.CSV()
}

// Markdown encodes the result's table as a GitHub-flavored Markdown
// table, byte-deterministically. Like CSV, the encoding covers the
// table only; chart series travel in the JSON encoding.
func (res *Result) Markdown() []byte {
	return res.Table.Markdown()
}

// RunOptions bundles the per-run Runner knobs a serving or batch
// frontend accepts over the wire. The zero value means defaults
// (CPU-count worker pool, one-round-scaled pairing fast path).
type RunOptions struct {
	Workers    int  `json:"workers,omitempty"`
	FullRounds bool `json:"full_rounds,omitempty"`
}

// Options expands o into the equivalent Runner options.
func (o RunOptions) Options() []Option {
	return []Option{WithWorkers(o.Workers), WithFullRounds(o.FullRounds)}
}

// Normalize canonicalizes options for result identity under this
// experiment: two requests whose normalized options agree are
// guaranteed byte-identical Result encodings, so a result cache may
// key on (ID, normalized options) and coalesce them. Workers is
// always zeroed (output is byte-identical at any pool size), and
// FullRounds is cleared for experiments whose generators never
// consult it (every artifact except the flow-level pairing
// simulations). Frontends should run with the normalized options so
// the cached Result's metadata matches its cache identity.
func (e Experiment) Normalize(o RunOptions) RunOptions {
	o.Workers = 0
	if !e.usesFullRounds {
		o.FullRounds = false
	}
	return o
}
