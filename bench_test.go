package netpart

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md for the index). Each benchmark regenerates
// its artifact end-to-end through the experiments Config API (default
// worker pool, background context), so `go test -bench=.` is the full
// reproduction run; b.ReportMetric attaches the headline numbers
// (bisection bandwidths, speedups, simulated seconds) to the output.
//
// Supporting ablation benches cover the computational kernels the
// experiments rest on: the Theorem 3.1 bound, the exact cuboid search,
// max-min fair rate allocation, DOR routing, and the
// Strassen-vs-classical crossover.

import (
	"context"
	"math/rand"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/experiments"
	"netpart/internal/iso"
	"netpart/internal/matrix"
	"netpart/internal/model"
	"netpart/internal/mpi"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/strassen"
	"netpart/internal/tabulate"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// benchTable regenerates one table with default options, failing the
// benchmark on error.
func benchTable(b *testing.B, gen func(experiments.Config, context.Context) (tabulate.Table, error)) tabulate.Table {
	tab, err := gen(experiments.Config{}, context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func benchBW(b *testing.B, gen func(experiments.Config, context.Context) (experiments.BWFigure, error)) experiments.BWFigure {
	f, err := gen(experiments.Config{}, context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// --- Tables ---

func BenchmarkTable1Mira(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table1).Rows) != 4 {
			b.Fatal("table 1 wrong")
		}
	}
}

func BenchmarkTable2Juqueen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table2).Rows) != 6 {
			b.Fatal("table 2 wrong")
		}
	}
}

func BenchmarkTable3MatmulParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table3).Rows) != 4 {
			b.Fatal("table 3 wrong")
		}
	}
}

func BenchmarkTable4ScalingParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table4).Rows) != 3 {
			b.Fatal("table 4 wrong")
		}
	}
}

func BenchmarkTable5Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table5).Rows) != 24 {
			b.Fatal("table 5 wrong")
		}
	}
}

func BenchmarkTable6MiraFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table6).Rows) != 10 {
			b.Fatal("table 6 wrong")
		}
	}
}

func BenchmarkTable7JuqueenFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchTable(b, experiments.Config.Table7).Rows) != 19 {
			b.Fatal("table 7 wrong")
		}
	}
}

// --- Figures ---

func BenchmarkFigure1MiraBW(b *testing.B) {
	var full float64
	for i := 0; i < b.N; i++ {
		f := benchBW(b, experiments.Config.Figure1)
		full = f.Series[1].Y[len(f.X)-1]
	}
	b.ReportMetric(full, "fullMachineBW")
}

func BenchmarkFigure2JuqueenBW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchBW(b, experiments.Config.Figure2)
		if len(f.X) != 19 {
			b.Fatal("figure 2 wrong")
		}
	}
}

func BenchmarkFigure3MiraPairing(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Config{}.Figure3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		speedup = fig.MaxSpeedup()
	}
	b.ReportMetric(speedup, "maxSpeedup")
}

func BenchmarkFigure4JuqueenPairing(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Config{}.Figure4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		speedup = fig.MaxSpeedup()
	}
	b.ReportMetric(speedup, "maxSpeedup")
}

func BenchmarkFigure5MatmulComm(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Config{}.Figure5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		r = fig.PointsA[0].Prediction.CommSec / fig.PointsB[0].Prediction.CommSec
	}
	b.ReportMetric(r, "commSpeedup4mp")
}

func BenchmarkFigure6StrongScaling(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Config{}.Figure6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		s = fig.PointsB[0].Prediction.CommSec / fig.PointsB[2].Prediction.CommSec
	}
	b.ReportMetric(s, "proposed2to8Speedup")
}

func BenchmarkFigure7MachineDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchBW(b, experiments.Config.Figure7)
		if len(f.Series) != 3 {
			b.Fatal("figure 7 wrong")
		}
	}
}

// --- Ablations: isoperimetric core ---

func BenchmarkTheorem31Bound(b *testing.B) {
	dims := torus.Shape{28, 8, 8, 8, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		iso.TorusBound(dims, 14336)
	}
}

func BenchmarkOptimalCuboidSearch(b *testing.B) {
	dims := torus.Shape{16, 16, 12, 8, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iso.MinCuboidPerimeter(dims, 24576); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBisectionAllMiraPartitions(b *testing.B) {
	mira := bgq.Mira()
	sizes := mira.PredefinedSizes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sizes {
			p, _ := mira.Predefined(s)
			_ = p.BisectionBW()
		}
	}
}

func BenchmarkHypercubeHarper(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iso.HarperPerimeter(30, (1<<30)/3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyperXLindsey(b *testing.B) {
	dims := torus.Shape{16, 8, 8} // a large HyperX
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iso.LindseyPerimeter(dims, 511); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: simulator core ---

func BenchmarkDORRouting(b *testing.B) {
	tor := torus.MustNew(16, 16, 12, 8, 2)
	r := route.NewRouter(tor)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % tor.NumVertices()
		buf = r.Route(src, r.FurthestNode(src), buf[:0])
	}
}

func BenchmarkMaxMinFair(b *testing.B) {
	// One pairing round on the 4-midplane current geometry: 2048 flows.
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := route.NewRouter(tor)
	demands, err := workload.BisectionPairing(r, 2.1472e9)
	if err != nil {
		b.Fatal(err)
	}
	routes := make([][]int, len(demands))
	for i, d := range demands {
		routes[i] = r.Route(d.Src, d.Dst, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(r.NumLinks(), 2e9)
		for j, d := range demands {
			sim.StartFlow(routes[j], d.Bytes, 0)
		}
		sim.RunUntilIdle()
	}
}

// BenchmarkMaxMinFairSteadyState isolates the incremental engine from
// construction cost: one Sim is reused across iterations (the arena,
// CSR index, and scratch arrays reach steady state and stop
// allocating), which is the regime the mpi engine runs the simulator
// in.
func BenchmarkMaxMinFairSteadyState(b *testing.B) {
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := route.NewRouter(tor)
	demands, err := workload.BisectionPairing(r, 2.1472e9)
	if err != nil {
		b.Fatal(err)
	}
	routes := make([][]int, len(demands))
	for i, d := range demands {
		routes[i] = r.Route(d.Src, d.Dst, nil)
	}
	sim := netsim.New(r.NumLinks(), 2e9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, d := range demands {
			sim.StartFlow(routes[j], d.Bytes, 0)
		}
		sim.RunUntilIdle()
	}
}

func BenchmarkSimulatedMPIAllreduce(b *testing.B) {
	tor := torus.MustNew(8, 4, 4, 4, 2) // 2 midplanes
	buf := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(mpi.Config{Topology: tor}, func(c *mpi.Comm) {
			c.Allreduce(buf, mpi.SumOp)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: workload kernels ---

func BenchmarkStrassenSequential512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.New(512, 512)
	y := matrix.New(512, 512)
	x.FillRandom(rng)
	y.FillRandom(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = strassen.Multiply(x, y)
	}
}

func BenchmarkClassicalMatmul512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.New(512, 512)
	y := matrix.New(512, 512)
	z := matrix.New(512, 512)
	x.FillRandom(rng)
	y.FillRandom(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.Mul(z, x, y)
	}
}

func BenchmarkCAPSCostAccounting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := strassen.Costs(32928, 31213, strassen.AllBFS(4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictMatmul(b *testing.B) {
	mira := bgq.Mira()
	p, _ := mira.Predefined(4)
	cfg := model.MatmulConfig{N: 32928, Ranks: 31213, BFSSteps: 4, Partition: p}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.PredictMatmul(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
