package netpart_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"netpart"
	"netpart/internal/scenario/sweep"
)

func acceptanceTrace(policy string) netpart.TraceSpec {
	return netpart.TraceSpec{
		Machine: "juqueen", Policy: policy, Backfill: true,
		Synthetic: &netpart.TraceSynthetic{
			Jobs: 210, Seed: 9, RateHz: 0.06,
			Sizes: []int{1, 2, 4, 8}, Pattern: "pairing", PatternFraction: 0.5,
		},
	}
}

// TestRunTracePublicAPI: the Runner executes a trace simulation into
// the uniform Result shape, with events and progress streaming.
func TestRunTracePublicAPI(t *testing.T) {
	var mu sync.Mutex
	var progress []netpart.Progress
	runner := netpart.NewRunner(netpart.WithProgress(func(p netpart.Progress) {
		mu.Lock()
		progress = append(progress, p)
		mu.Unlock()
	}))
	var events []netpart.TraceEvent
	spec := netpart.TraceSpec{
		Machine: "juqueen", Policy: "contention-aware",
		Jobs: []netpart.TraceJob{
			{Midplanes: 8, RuntimeSec: 100, Pattern: "pairing"},
			{Midplanes: 4, ArrivalSec: 10, RuntimeSec: 50},
		},
	}
	res, err := runner.RunTrace(context.Background(), spec, func(ev netpart.TraceEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Experiment.ID, "trace:") {
		t.Errorf("ID %q", res.Experiment.ID)
	}
	if res.Experiment.Cost != netpart.CostModerate {
		t.Errorf("cost %q", res.Experiment.Cost)
	}
	out, ok := res.Data.(*netpart.TraceOutcome)
	if !ok {
		t.Fatalf("Data is %T", res.Data)
	}
	if out.Metrics.Jobs != 2 || len(events) != 4 {
		t.Fatalf("jobs %d, events %d", out.Metrics.Jobs, len(events))
	}
	if len(progress) == 0 || progress[len(progress)-1].Done != 2 {
		t.Fatalf("progress %v", progress)
	}
	if !strings.HasPrefix(progress[0].Run, res.Experiment.ID+"#") {
		t.Errorf("run token %q", progress[0].Run)
	}
	// The rendered table carries the headline metrics.
	md := string(res.Markdown())
	for _, want := range []string{"makespan (s)", "avg stretch", "contention factor"} {
		if !strings.Contains(md, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if _, err := res.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceAcceptance: the 200+ job acceptance criterion — under
// all three policies the Result JSON is byte-identical across worker
// counts and repeated runs.
func TestRunTraceAcceptance(t *testing.T) {
	for _, policy := range []string{"first-fit", "best-bisection", "contention-aware"} {
		var want []byte
		for _, workers := range []int{1, 4} {
			for rep := 0; rep < 2; rep++ {
				runner := netpart.NewRunner(netpart.WithWorkers(workers))
				res, err := runner.RunTrace(context.Background(), acceptanceTrace(policy), nil)
				if err != nil {
					t.Fatal(err)
				}
				out := res.Data.(*netpart.TraceOutcome)
				if out.Metrics.Jobs != 210 {
					t.Fatalf("%s: %d jobs", policy, out.Metrics.Jobs)
				}
				got, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Fatalf("%s: Result JSON differs (workers %d rep %d)", policy, workers, rep)
				}
			}
		}
	}
}

// TestRunTraceGridPublicAPI: a policy × arrival-rate grid runs on the
// worker pool with per-point streaming and is byte-deterministic
// across pool sizes.
func TestRunTraceGridPublicAPI(t *testing.T) {
	grid := netpart.TraceGrid{
		Name: "policy × rate",
		Base: netpart.TraceSpec{
			Machine:   "juqueen",
			Synthetic: &netpart.TraceSynthetic{Jobs: 40, Pattern: "pairing", PatternFraction: 0.4},
		},
		Axes: []netpart.SweepAxis{
			{Path: "policy", Values: sweep.Strings("first-fit", "contention-aware")},
			{Path: "synthetic.rate_hz", Values: sweep.Floats(0.02, 0.08)},
		},
	}
	var want []byte
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var points []netpart.TracePoint
		runner := netpart.NewRunner(netpart.WithWorkers(workers))
		res, err := runner.RunTraceGrid(context.Background(), grid, func(p netpart.TracePoint) {
			mu.Lock()
			points = append(points, p)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(res.Experiment.ID, "tracegrid:") {
			t.Errorf("ID %q", res.Experiment.ID)
		}
		data, ok := res.Data.(*netpart.TraceGridData)
		if !ok {
			t.Fatalf("Data is %T", res.Data)
		}
		if len(data.Points) != 4 || data.Failed != 0 || len(points) != 4 {
			t.Fatalf("points %d, failed %d, streamed %d", len(data.Points), data.Failed, len(points))
		}
		got, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("grid Result JSON differs at %d workers", workers)
		}
	}
}

// TestRunTraceValidation: invalid specs and grids fail before any
// simulation runs.
func TestRunTraceValidation(t *testing.T) {
	runner := netpart.NewRunner()
	if _, err := runner.RunTrace(context.Background(), netpart.TraceSpec{}, nil); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := runner.RunTraceGrid(context.Background(), netpart.TraceGrid{
		Base: netpart.TraceSpec{Machine: "juqueen", Synthetic: &netpart.TraceSynthetic{Jobs: 1}},
		Axes: []netpart.SweepAxis{{Path: "policy", Values: sweep.Strings("nope")}},
	}, nil); err == nil {
		t.Error("invalid grid accepted")
	}
}

// TestRunTraceCancellation: pre-canceled contexts return promptly.
func TestRunTraceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runner := netpart.NewRunner()
	if _, err := runner.RunTrace(ctx, acceptanceTrace("first-fit"), nil); err == nil {
		t.Error("canceled trace ran")
	}
	if _, err := runner.RunTraceGrid(ctx, netpart.TraceGrid{
		Base: netpart.TraceSpec{Machine: "juqueen", Synthetic: &netpart.TraceSynthetic{Jobs: 2}},
	}, nil); err == nil {
		t.Error("canceled grid ran")
	}
}
