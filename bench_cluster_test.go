package netpart

import (
	"context"
	"fmt"
	"testing"
)

// Cluster-session benchmarks: the cost of streaming a workload into a
// live session one batch at a time — the serving unit of
// POST /v1/cluster/{id}/jobs. cmd/benchsnap records these to
// BENCH_sweep.json alongside the batch trace-simulator numbers; the
// spread against BenchmarkTraceSim200 is the overhead of incremental
// submission over a one-shot replay of the same schedule.

// BenchmarkClusterSubmit streams 200 jobs into a fresh session in
// 20-job batches under the contention-aware policy, then closes it.
func BenchmarkClusterSubmit(b *testing.B) {
	runner := NewRunner()
	sizes := []int{1, 2, 4, 8}
	jobs := make([]ClusterJob, 200)
	for i := range jobs {
		jobs[i] = ClusterJob{
			ID:         fmt.Sprintf("job-%03d", i),
			Midplanes:  sizes[i%len(sizes)],
			ArrivalSec: float64(i) * 15,
			RuntimeSec: 300 + float64(i%7)*60,
			Pattern:    "pairing",
		}
	}
	spec := ClusterSpec{Machine: "juqueen", Policy: "contention-aware", Backfill: true}
	ctx := context.Background()
	oneRun := func() {
		sess, err := runner.OpenCluster(spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		for at := 0; at < len(jobs); at += 20 {
			if _, err := sess.Submit(ctx, jobs[at:at+20]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sess.Close(ctx); err != nil {
			b.Fatal(err)
		}
	}
	// Prime the process-wide caches outside the measured region so
	// every measured iteration has the steady-state cost (short
	// -benchtime windows otherwise report one cold iteration).
	oneRun()
	b.ReportAllocs()
	for b.Loop() {
		oneRun()
	}
}
