module netpart

go 1.24
