package netpart_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"netpart"
	"netpart/internal/scenario/sweep"
)

// TestRunScenarioPublicAPI: the Runner executes a user-defined
// scenario into the uniform Result shape with byte-deterministic
// encodings.
func TestRunScenarioPublicAPI(t *testing.T) {
	runner := netpart.NewRunner()
	spec := netpart.ScenarioSpec{
		Topology: netpart.ScenarioTopology{Kind: "partition", Machine: "juqueen", Midplanes: 6, Policy: "worst-case"},
		Workload: netpart.ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
	}
	res, err := runner.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Experiment.ID, "scenario:") {
		t.Errorf("ID %q", res.Experiment.ID)
	}
	if res.Experiment.Kind != netpart.KindTable || res.Experiment.Cost != netpart.CostModerate {
		t.Errorf("descriptor %+v", res.Experiment)
	}
	out, ok := res.Data.(*netpart.ScenarioOutcome)
	if !ok {
		t.Fatalf("data %T", res.Data)
	}
	if out.Geometry != "6x1x1x1" { // JUQUEEN's worst 6-midplane cuboid is the ring
		t.Errorf("worst-case geometry %s", out.Geometry)
	}
	a, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := runner.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("scenario Result JSON not byte-deterministic")
	}
	if res.Meta.Run == res2.Meta.Run {
		t.Error("run tokens must be unique")
	}
}

// TestRunSweepPublicAPI: RunSweep streams points, reports per-point
// progress through WithProgress, and its encodings are deterministic
// across worker counts.
func TestRunSweepPublicAPI(t *testing.T) {
	grid := netpart.SweepGrid{
		Name: "api sweep",
		Base: netpart.ScenarioSpec{
			Topology: netpart.ScenarioTopology{Kind: "torus", Shape: "4x4"},
			Workload: netpart.ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
		},
		Axes: []netpart.SweepAxis{
			{Path: "topology.shape", Values: sweep.Strings("4x4", "6x4", "8x4")},
			{Path: "workload.pattern", Values: sweep.Strings("pairing", "neighbor")},
		},
	}

	var mu sync.Mutex
	var points []int
	var progress []netpart.Progress
	runner := netpart.NewRunner(netpart.WithWorkers(4), netpart.WithProgress(func(p netpart.Progress) {
		// WithProgress is serialized by the Runner itself.
		progress = append(progress, p)
	}))
	res, err := runner.RunSweep(context.Background(), grid, func(p netpart.SweepPoint) {
		mu.Lock()
		points = append(points, p.Index)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Experiment.ID, "sweep:") || res.Experiment.Title != "api sweep" {
		t.Errorf("descriptor %+v", res.Experiment)
	}
	if len(points) != 6 {
		t.Errorf("streamed %d points", len(points))
	}
	if len(progress) != 6 || progress[5].Done != 6 || progress[5].Total != 6 {
		t.Errorf("progress %+v", progress)
	}
	for _, p := range progress {
		if p.Experiment != res.Experiment.ID || p.Run != res.Meta.Run {
			t.Errorf("progress tagging %+v", p)
		}
	}
	data, ok := res.Data.(*netpart.SweepData)
	if !ok {
		t.Fatalf("data %T", res.Data)
	}
	if data.Failed != 0 || len(data.Points) != 6 {
		t.Errorf("sweep data %+v", data)
	}

	// Byte determinism across worker counts, via the public encodings.
	seq, err := netpart.NewRunner(netpart.WithWorkers(1)).RunSweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.JSON()
	b, _ := seq.JSON()
	if string(a) != string(b) {
		t.Error("sweep Result JSON differs across worker counts")
	}
	csvA, _ := res.CSV()
	csvB, _ := seq.CSV()
	if string(csvA) != string(csvB) {
		t.Error("sweep CSV differs across worker counts")
	}
}

// TestSweepGolden pins the full encoded output of a small sweep —
// partition policies (internal/sched driven through the scenario
// layer) × patterns including the adversarial hill climb — against
// checked-in golden files, so output drift across versions is caught,
// not just nondeterminism within one version. Regenerate with
// UPDATE_GOLDEN=1 go test -run TestSweepGolden .
func TestSweepGolden(t *testing.T) {
	grid := netpart.SweepGrid{
		Name: "golden",
		Base: netpart.ScenarioSpec{
			Topology: netpart.ScenarioTopology{Kind: "partition", Machine: "2x2x2x1", Midplanes: 4},
			Workload: netpart.ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
		},
		Axes: []netpart.SweepAxis{
			{Path: "topology.policy", Values: sweep.Strings("best-case", "worst-case", "first-fit", "contention-aware")},
			{Path: "workload.pattern", Values: sweep.Strings("pairing", "adversarial"), Zip: "p"},
			{Path: "workload.iters", Values: sweep.Ints(0, 128), Zip: "p"},
		},
	}
	res, err := netpart.NewRunner(netpart.WithWorkers(4)).RunSweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []struct {
		file string
		get  func() ([]byte, error)
	}{
		{"sweep_golden.json", res.JSON},
		{"sweep_golden.csv", res.CSV},
		{"sweep_golden.md", func() ([]byte, error) { return res.Markdown(), nil }},
	} {
		got, err := enc.get()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", enc.file)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
		}
		if string(got) != string(want) {
			t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
		}
	}
}

// TestRunSweepInvalidGrid: expansion errors surface before any work.
func TestRunSweepInvalidGrid(t *testing.T) {
	runner := netpart.NewRunner()
	_, err := runner.RunSweep(context.Background(), netpart.SweepGrid{
		Base: netpart.ScenarioSpec{
			Topology: netpart.ScenarioTopology{Kind: "torus", Shape: "4x4"},
			Workload: netpart.ScenarioWorkload{Pattern: "pairing"},
		},
		Axes: []netpart.SweepAxis{{Path: "workload.pattern", Values: sweep.Strings("hurricane")}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown workload pattern") {
		t.Errorf("err = %v", err)
	}
}
