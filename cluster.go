package netpart

import (
	"netpart/internal/sched/cluster"
)

// Live cluster sessions: the incremental form of a trace simulation.
// Where RunTrace replays a complete trace and returns, OpenCluster
// starts a long-running simulated cluster that accepts an open-ended
// stream of job submissions, streams engine events as they happen,
// answers metric snapshots mid-flight, and reduces to the same
// tracesim-shaped Metrics on Close — replaying a complete trace
// through a session yields metrics byte-identical to RunTrace. The
// serving layer exposes sessions as POST /v1/cluster resources.

// ClusterSpec declares one session: machine, placement policy,
// backfill, optional failure model and the virtual clock mode; see
// the internal/sched/cluster package documentation.
type ClusterSpec = cluster.Spec

// ClusterJob is one idempotent job submission (client-supplied ID).
type ClusterJob = cluster.SubmitJob

// ClusterEvent is one engine occurrence (submit, place, contention,
// start, finish, kill, outage, heal), streamed in simulation-time
// order and annotated with the client job ID.
type ClusterEvent = cluster.Event

// ClusterReceipt summarizes one submission batch.
type ClusterReceipt = cluster.Receipt

// ClusterSnapshot is a session's mid-flight state summary.
type ClusterSnapshot = cluster.Snapshot

// ClusterMetrics is the final session summary, shaped exactly like a
// batch trace simulation's metrics.
type ClusterMetrics = cluster.Metrics

// ClusterSession is a live session handle: Submit, Snapshot, Close.
// Safe for concurrent use.
type ClusterSession = cluster.Session

// OpenCluster validates the spec and opens a session at virtual time
// zero. onEvent (optional) receives every engine event; it runs on
// the goroutine driving the simulation (a submitting caller or a
// real-time session's clock), so it must not block or call back into
// the session.
func (r *Runner) OpenCluster(spec ClusterSpec, onEvent func(ClusterEvent)) (*ClusterSession, error) {
	return cluster.Open(spec, cluster.SessionOptions{OnEvent: onEvent})
}
