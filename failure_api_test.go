package netpart_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netpart"
	"netpart/internal/scenario/sweep"
)

// failureSweepGrid is the robustness axis of the README examples: a
// 0–10% degraded-links chaos axis crossed with the three placement
// policies, every point carrying its healthy-baseline deltas.
func failureSweepGrid() netpart.SweepGrid {
	return netpart.SweepGrid{
		Name: "failure sweep",
		Base: netpart.ScenarioSpec{
			Topology: netpart.ScenarioTopology{Kind: "partition", Machine: "2x2x2x1", Midplanes: 4},
			Workload: netpart.ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
			Failures: &netpart.FailureSpec{Model: "random_links", Factor: 0.5},
		},
		Axes: []netpart.SweepAxis{
			{Path: "topology.policy", Values: sweep.Strings("first-fit", "best-bisection", "contention-aware")},
			{Path: "failures.fraction", Values: sweep.Floats(0, 0.05, 0.10)},
		},
	}
}

// TestFailureSweepEndToEnd runs the degraded-links × policy grid and
// checks every point carries the robustness fields, the healthy
// endpoint (fraction 0) reports unit degradation, and the encodings
// are byte-identical across worker counts.
func TestFailureSweepEndToEnd(t *testing.T) {
	grid := failureSweepGrid()
	res, err := netpart.NewRunner(netpart.WithWorkers(4)).RunSweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := res.Data.(*netpart.SweepData)
	if data.Failed != 0 || len(data.Points) != 9 {
		t.Fatalf("failed=%d points=%d", data.Failed, len(data.Points))
	}
	for _, p := range data.Points {
		o := p.Outcome
		if o.Healthy == nil {
			t.Fatalf("point %d has no healthy baseline", p.Index)
		}
		frac := ""
		for _, c := range p.Coords {
			if c.Path == "failures.fraction" {
				frac = c.Value
			}
		}
		if frac == "0" {
			if o.DegradedLinks != 0 || o.Healthy.DegradationX != 1 {
				t.Fatalf("healthy endpoint degraded: %+v", o)
			}
		} else {
			if o.DegradedLinks == 0 || o.CapacityFactor != 0.5 {
				t.Fatalf("point %d (frac %s): degraded=%d factor=%v", p.Index, frac, o.DegradedLinks, o.CapacityFactor)
			}
			if o.Healthy.DegradationX < 1 {
				t.Fatalf("point %d: degradation %v < 1 on a DOR partition", p.Index, o.Healthy.DegradationX)
			}
		}
	}

	seq, err := netpart.NewRunner(netpart.WithWorkers(1)).RunSweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.JSON()
	b, _ := seq.JSON()
	if string(a) != string(b) {
		t.Error("failure sweep JSON differs across worker counts")
	}
}

// TestFailureSweepGolden pins the encoded failure sweep against
// checked-in goldens. Regenerate with
// UPDATE_GOLDEN=1 go test -run TestFailureSweepGolden .
func TestFailureSweepGolden(t *testing.T) {
	res, err := netpart.NewRunner(netpart.WithWorkers(4)).RunSweep(context.Background(), failureSweepGrid(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []struct {
		file string
		get  func() ([]byte, error)
	}{
		{"failure_sweep.json", res.JSON},
		{"failure_sweep.csv", res.CSV},
		{"failure_sweep.md", func() ([]byte, error) { return res.Markdown(), nil }},
	} {
		got, err := enc.get()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", enc.file)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
		}
		if string(got) != string(want) {
			t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
		}
	}
}

// TestDisconnectingPointIsIsolated: a failure fraction that
// disconnects the topology fails its own point with the typed route
// error's message; the rest of the sweep completes.
func TestDisconnectingPointIsIsolated(t *testing.T) {
	grid := netpart.SweepGrid{
		Name: "disconnect isolation",
		Base: netpart.ScenarioSpec{
			Topology: netpart.ScenarioTopology{Kind: "torus", Shape: "4x4"},
			Workload: netpart.ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
			Failures: &netpart.FailureSpec{Model: "random_links", Factor: 0},
		},
		Axes: []netpart.SweepAxis{
			// 0.01 of 32 links rounds to zero removed — still healthy.
			// Fraction 1 removes every link: DOR's fixed paths cannot
			// reroute, so that one point must fail typed.
			{Path: "failures.fraction", Values: sweep.Floats(0, 0.01, 1)},
		},
	}
	res, err := netpart.NewRunner(netpart.WithWorkers(2)).RunSweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatalf("sweep aborted instead of isolating the point: %v", err)
	}
	data := res.Data.(*netpart.SweepData)
	if data.Failed != 1 {
		t.Fatalf("failed=%d, want exactly the disconnected point", data.Failed)
	}
	last := data.Points[2]
	if last.Outcome != nil || !strings.Contains(last.Err, "no dor route") {
		t.Fatalf("disconnected point %+v", last)
	}
	for _, p := range data.Points[:2] {
		if p.Outcome == nil {
			t.Fatalf("healthy point %d failed: %s", p.Index, p.Err)
		}
	}
}
