// Inevitable-contention: the flip side of the paper. Improving the
// partition geometry removes *avoidable* contention; the small-set
// expansion analysis of Ballard et al. [7] (the paper's §2 toolbox)
// lower-bounds the contention no routing or geometry can remove.
// This example computes routing-independent lower bounds for three
// workloads on a 4-midplane partition, compares them with the
// simulated execution, and shows where deterministic routing leaves
// bandwidth on the table.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netpart/internal/bgq"
	"netpart/internal/contbound"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/tabulate"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

func main() {
	p := bgq.MustPartition(2, 2, 1, 1) // the paper's proposed 4-midplane geometry
	tor, err := torus.New(p.NodeShape()...)
	if err != nil {
		log.Fatal(err)
	}
	r := route.NewRouter(tor)
	const gb = 1e9
	rng := rand.New(rand.NewSource(2020))

	mustDemands := func(demands []route.Demand, err error) []route.Demand {
		if err != nil {
			log.Fatal(err)
		}
		return demands
	}
	patterns := []struct {
		name    string
		demands []route.Demand
	}{
		{"furthest-node pairing", mustDemands(workload.BisectionPairing(r, gb))},
		{"random permutation", mustDemands(workload.RandomPermutation(tor, gb, rng))},
		{"longest-dim shift", mustDemands(workload.LongestDimShift(tor, gb))},
		{"nearest-neighbour halo", mustDemands(workload.NearestNeighbor(tor, gb/10))},
	}

	t := tabulate.Table{
		Title:   fmt.Sprintf("Contention analysis on partition %s (%s nodes, 2 GB/s links)", p, p.NodeShape()),
		Headers: []string{"workload", "lower bound (s)", "simulated (s)", "routing gap", "binding cut"},
	}
	for _, pat := range patterns {
		lb, err := contbound.SlabBound(tor, pat.demands, 2e9)
		if err != nil {
			log.Fatal(err)
		}
		sim := netsim.New(r.NumLinks(), 2e9)
		for _, d := range pat.demands {
			if d.Src == d.Dst {
				continue
			}
			sim.StartFlow(r.Route(d.Src, d.Dst, nil), d.Bytes, 0)
		}
		elapsed := sim.RunUntilIdle()
		gap := "-"
		if lb.Seconds > 0 {
			gap = fmt.Sprintf("%.2fx", elapsed/lb.Seconds)
		}
		t.AddRow(pat.name, lb.Seconds, elapsed, gap, lb.Witness)
	}
	fmt.Print(t.Render())

	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("- The lower bound is routing-independent: no scheduler, mapping or")
	fmt.Println("  adaptive routing can finish the workload faster on this geometry.")
	fmt.Println("- The pairing workload shows a 2.00x routing gap: deterministic")
	fmt.Println("  dimension-ordered routing breaks all its distance ties toward the")
	fmt.Println("  positive direction, using only one of the two cut planes. That")
	fmt.Println("  factor is routing-avoidable; the rest is topology.")
	fmt.Println("- The halo exchange is contention-free: simulation meets the")
	fmt.Println("  single-link bound exactly, geometry cannot help or hurt it.")
}
