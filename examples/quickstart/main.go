// Quickstart: a 30-second tour of the netpart public API — build a
// torus, bound a cut with the paper's Theorem 3.1, improve a
// Blue Gene/Q partition geometry, and run a registered experiment
// through the Runner.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netpart"
)

func main() {
	// A torus network with unequal dimensions (the case the paper's
	// Theorem 3.1 newly covers).
	dims, err := netpart.ParseShape("12x8x4")
	if err != nil {
		log.Fatal(err)
	}
	tor, err := netpart.NewTorus(dims...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", tor)

	// How few edges can leave a 96-vertex subset?
	bound, r := netpart.TorusBound(dims, 96)
	fmt.Printf("Theorem 3.1 lower bound for t=96: %.1f edges (r = %d)\n", bound, r)
	exact, err := netpart.MinCuboidPerimeter(dims, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal cuboid: %s, perimeter %d\n", exact.Lens, exact.Perimeter)

	// The headline application: Mira's 24-midplane partition.
	mira := netpart.Mira()
	current, _ := mira.Predefined(24)
	proposed, _ := mira.Proposed(24)
	fmt.Printf("\nMira, 24 midplanes (12288 nodes):\n")
	fmt.Printf("  scheduler's geometry: %s, internal bisection %d links\n", current, current.BisectionBW())
	fmt.Printf("  proposed geometry:    %s, internal bisection %d links\n", proposed, proposed.BisectionBW())
	speedup, err := netpart.SpeedupBound(current, proposed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  contention-bound speedup: up to %.2fx — same nodes, same cables\n", speedup)

	// Every artifact of the paper's evaluation is a registered
	// experiment; the Runner executes them with per-call options and
	// context cancellation.
	runner := netpart.NewRunner(netpart.WithWorkers(4))
	res, err := runner.Run(context.Background(), "table1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table.Render())
	fmt.Printf("(cost class %q, computed in %v)\n", res.Experiment.Cost, res.Meta.Elapsed.Round(time.Microsecond))
}
