// Contention-lab: drive the simulated MPI machine directly. Runs the
// bisection-pairing benchmark through the goroutine-per-rank engine
// (one goroutine per compute node, virtual time) on both 4-midplane
// Mira geometries, then demonstrates a collective on the better one —
// the same experiment as Figure 3, but executed as an actual
// message-passing program rather than injected flows.
package main

import (
	"fmt"
	"log"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/mpi"
	"netpart/internal/route"
	"netpart/internal/torus"
)

func main() {
	const rounds = 3 // enough to see the contention; each round ~2 GiB/pair
	geometries := []bgq.Partition{
		bgq.MustPartition(4, 1, 1, 1), // Mira's current 4-midplane geometry
		bgq.MustPartition(2, 2, 1, 1), // the paper's proposal
	}

	fmt.Println("bisection pairing through the simulated MPI engine")
	fmt.Printf("(%d rounds of 2.1472 GB per pair, 2 GB/s links, one rank per node)\n\n", rounds)
	var times []float64
	for _, p := range geometries {
		tor, err := torus.New(p.NodeShape()...)
		if err != nil {
			log.Fatal(err)
		}
		r := route.NewRouter(tor)
		cfg := model.PaperPairing(p)
		stats, err := mpi.Run(mpi.Config{Topology: tor}, func(c *mpi.Comm) {
			peer := r.FurthestNode(c.GlobalRank())
			for round := 0; round < rounds; round++ {
				c.Sendrecv(peer, round, nil, cfg.RoundBytes(), peer, round)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		times = append(times, stats.Elapsed)
		fmt.Printf("  %-10s bisection %4d links: %8.2f s  (%d messages, %.1f TB moved)\n",
			p, p.BisectionBW(), stats.Elapsed, stats.Messages, stats.TotalBytes/1e12)
	}
	fmt.Printf("\nspeedup from geometry alone: %.2fx (paper predicts %.2fx)\n\n",
		times[0]/times[1],
		mustSpeedup(geometries[0], geometries[1]))

	// A collective on the simulated machine: allreduce across all 2048
	// nodes of the better geometry.
	tor, err := torus.New(geometries[1].NodeShape()...)
	if err != nil {
		log.Fatal(err)
	}
	vec := make([]float64, 1<<14) // 128 KiB per node
	for i := range vec {
		vec[i] = 1
	}
	stats, err := mpi.Run(mpi.Config{Topology: tor}, func(c *mpi.Comm) {
		sum := c.Allreduce(vec, mpi.SumOp)
		if c.Rank() == 0 && sum[0] != float64(c.Size()) {
			log.Fatalf("allreduce wrong: %v", sum[0])
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allreduce of 128 KiB across %d simulated nodes: %.3f ms, %d messages\n",
		tor.NumVertices(), stats.Elapsed*1e3, stats.Messages)
}

func mustSpeedup(worse, better bgq.Partition) float64 {
	s, err := model.SpeedupBound(worse, better)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
