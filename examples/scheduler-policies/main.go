// Scheduler-policies: the paper's §5 proposal end-to-end. A day of
// job submissions replays against JUQUEEN under three allocation
// policies (first-fit, best-bisection, contention-aware) with and
// without backfilling, showing how the user's "my job is
// contention-bound" hint converts directly into queue throughput.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netpart/internal/bgq"
	"netpart/internal/sched"
	"netpart/internal/tabulate"
)

func main() {
	jobs := syntheticStream(40, 2020)
	m := bgq.Juqueen()

	t := tabulate.Table{
		Title: fmt.Sprintf("%d-job stream on %s (60%% contention-bound)", len(jobs), m.Name),
		Headers: []string{"policy", "backfill", "makespan (h)", "avg wait (h)",
			"avg stretch", "machine-hours"},
	}
	for _, pol := range []sched.PlacementPolicy{sched.FirstFit{}, sched.BestBisection{}, sched.ContentionAware{}} {
		for _, backfill := range []bool{false, true} {
			res, err := sched.RunWithOptions(m, pol, jobs, sched.Options{Backfill: backfill})
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(pol.Name(), backfill,
				fmt.Sprintf("%.2f", res.MakespanSec/3600),
				fmt.Sprintf("%.2f", res.TotalWaitSec/float64(len(jobs))/3600),
				fmt.Sprintf("%.3f", res.AvgStretch()),
				fmt.Sprintf("%.1f", res.MidplaneSeconds/3600))
		}
	}
	fmt.Print(t.Render())
	fmt.Println()
	fmt.Println("avg stretch = actual / base runtime; 1.000 means every contention-")
	fmt.Println("bound job got a bisection-optimal geometry. First-fit stretches such")
	fmt.Println("jobs (it gladly allocates ring-shaped partitions), which feeds back")
	fmt.Println("into everyone's queue wait. The contention-aware policy only spends")
	fmt.Println("effort on jobs that declared the hint — the scheduler change the")
	fmt.Println("paper's §5 proposes.")
}

// syntheticStream generates a reproducible job mix: sizes weighted
// toward small jobs, Poisson-ish arrivals, 60% contention-bound.
func syntheticStream(n int, seed int64) []sched.Job {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{1, 2, 4, 4, 8, 8, 8, 12, 16, 24, 28}
	jobs := make([]sched.Job, n)
	arrival := 0.0
	for i := range jobs {
		arrival += rng.ExpFloat64() * 600 // ~10 min between submissions
		jobs[i] = sched.Job{
			ID:              i,
			Midplanes:       sizes[rng.Intn(len(sizes))],
			ArrivalSec:      arrival,
			BaseDurationSec: 900 + rng.Float64()*5400, // 15-105 min
			ContentionBound: rng.Float64() < 0.6,
		}
	}
	return jobs
}
