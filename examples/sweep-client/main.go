// Sweep-client: the consumer's view of the scenario & sweep API.
// It submits a parameter-grid sweep to a running netpartd, tails the
// Server-Sent-Events stream — printing every completed point as it
// lands — and fetches the final result in the requested encoding.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/netpartd -addr localhost:8080
//	go run ./examples/sweep-client -addr localhost:8080
//
// By default it sweeps machine grid shape × workload pattern ×
// allocation policy over hypothetical Blue Gene/Q machines — the
// machine-design question of the paper's §5 asked at serving time
// instead of compile time. Pass -grid file.json to submit your own
// grid document instead.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
)

func demoGrid() map[string]any {
	return map[string]any{
		"name": "machine shape × pattern × policy",
		"base": map[string]any{
			"topology": map[string]any{"kind": "partition", "machine": "2x2x2x1", "midplanes": 4},
			"workload": map[string]any{"pattern": "pairing", "bytes": 1e9},
		},
		"axes": []map[string]any{
			{"path": "topology.machine", "values": []any{"2x2x2x1", "4x2x2x1", "4x4x2x1"}},
			{"path": "workload.pattern", "values": []any{"pairing", "longest-dim"}},
			{"path": "topology.policy", "values": []any{"best-case", "worst-case", "first-fit"}},
		},
	}
}

func main() {
	addr := flag.String("addr", "localhost:8080", "netpartd address")
	gridFile := flag.String("grid", "", "grid JSON file (default: built-in demo grid)")
	format := flag.String("format", "markdown", "final result encoding: json, csv or markdown")
	flag.Parse()
	log.SetFlags(0)
	base := "http://" + *addr

	var body []byte
	if *gridFile != "" {
		var err error
		if body, err = os.ReadFile(*gridFile); err != nil {
			log.Fatal(err)
		}
	} else {
		body, _ = json.Marshal(demoGrid())
	}

	// Submit the sweep.
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %s: %s", resp.Status, doc)
	}
	var job struct {
		ID         string            `json:"id"`
		Experiment string            `json:"experiment"`
		Links      map[string]string `json:"links"`
	}
	if err := json.Unmarshal(doc, &job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (experiment %s)\n", job.ID, job.Experiment)

	// Tail the event stream: per-point completions and progress.
	events, err := http.Get(base + job.Links["events"])
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	sc := bufio.NewScanner(events.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "point":
				var p struct {
					Index  int `json:"index"`
					Coords []struct {
						Path  string `json:"path"`
						Value string `json:"value"`
					} `json:"coords"`
					Outcome *struct {
						Geometry    string  `json:"geometry"`
						StaticSec   float64 `json:"static_sec"`
						ContentionX float64 `json:"contention_x"`
					} `json:"outcome"`
					Err string `json:"error"`
				}
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					continue
				}
				coords := make([]string, 0, len(p.Coords))
				for _, c := range p.Coords {
					coords = append(coords, c.Value)
				}
				switch {
				case p.Err != "":
					fmt.Printf("  point %2d  %-40s  ERROR %s\n", p.Index, strings.Join(coords, " · "), p.Err)
				case p.Outcome != nil:
					fmt.Printf("  point %2d  %-40s  geom %-8s static %.3fs  contention %.1fx\n",
						p.Index, strings.Join(coords, " · "), p.Outcome.Geometry, p.Outcome.StaticSec, p.Outcome.ContentionX)
				}
			case "progress":
				var pr struct{ Done, Total int }
				if json.Unmarshal([]byte(data), &pr) == nil && pr.Done == pr.Total {
					fmt.Printf("  all %d points done\n", pr.Total)
				}
			case "done":
				goto finished
			}
		}
	}
finished:

	// Fetch the final result in the requested encoding. Repeat fetches
	// are byte-identical; pass If-None-Match with the returned ETag to
	// revalidate for free.
	res, err := http.Get(base + job.Links["self"] + "?format=" + *format)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	final, _ := io.ReadAll(res.Body)
	if res.StatusCode != http.StatusOK {
		log.Fatalf("result: %s: %s", res.Status, final)
	}
	fmt.Printf("\nresult (%s, ETag %s):\n\n%s\n", *format, res.Header.Get("ETag"), final)
}
