// Serve-client: a minimal netpartd API client. Submits one
// asynchronous run, tails its Server-Sent-Events progress stream to
// stderr, and prints the finished result in the negotiated encoding —
// the wire-level counterpart of examples/experiment-runner.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/netpartd -addr localhost:8080 &
//	go run ./examples/serve-client -addr localhost:8080 -id figure3
//	go run ./examples/serve-client -id table6 -format markdown
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "netpartd address")
	id := flag.String("id", "figure3", "experiment ID to run")
	workers := flag.Int("workers", 0, "worker-pool bound for the run (0 = server default)")
	fullRounds := flag.Bool("full-rounds", false, "simulate every pairing round")
	format := flag.String("format", "json", "result encoding: json, csv or markdown")
	flag.Parse()
	log.SetFlags(0)
	base := "http://" + *addr

	// Submit the run.
	body, err := json.Marshal(map[string]any{
		"experiment": *id, "workers": *workers, "full_rounds": *fullRounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	accepted, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %s: %s", resp.Status, accepted)
	}
	var job struct {
		ID     string `json:"id"`
		Key    string `json:"key"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(accepted, &job); err != nil {
		log.Fatal(err)
	}
	log.Printf("submitted %s as %s", job.Key, job.ID)

	// Tail the SSE progress stream until the terminal "done" event.
	events, err := http.Get(base + "/v1/runs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	if events.StatusCode != http.StatusOK {
		log.Fatalf("events: %s", events.Status)
	}
	status := tail(events.Body)
	if status != "done" {
		log.Fatalf("run finished with status %q", status)
	}

	// Fetch the result in the requested encoding.
	res, err := http.Get(base + "/v1/runs/" + job.ID + "?format=" + *format)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	log.Printf("result (%s, ETag %s):", res.Header.Get("Content-Type"), res.Header.Get("ETag"))
	if _, err := io.Copy(os.Stdout, res.Body); err != nil {
		log.Fatal(err)
	}
}

// tail prints progress frames from an SSE stream and returns the
// terminal status from the "done" event.
func tail(r io.Reader) string {
	sc := bufio.NewScanner(r)
	var name, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && name != "":
			switch name {
			case "progress":
				var p struct {
					Run   string `json:"run"`
					Done  int    `json:"done"`
					Total int    `json:"total"`
				}
				if json.Unmarshal([]byte(data), &p) == nil {
					fmt.Fprintf(os.Stderr, "\r%s %d/%d", p.Run, p.Done, p.Total)
					if p.Done == p.Total {
						fmt.Fprintln(os.Stderr)
					}
				}
			case "done":
				var d struct {
					Status string `json:"status"`
					Error  string `json:"error"`
				}
				if json.Unmarshal([]byte(data), &d) == nil {
					if d.Error != "" {
						log.Printf("run error: %s", d.Error)
					}
					return d.Status
				}
				return ""
			}
			name, data = "", ""
		}
	}
	return ""
}
