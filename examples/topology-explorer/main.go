// Topology-explorer: walks through the §5 topologies — hypercube,
// HyperX, Dragonfly, mesh — computing isoperimetric profiles with the
// closed-form solvers and validating them against exhaustive search on
// small instances.
package main

import (
	"fmt"
	"log"

	"netpart/internal/iso"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

func main() {
	hypercube()
	hyperx()
	dragonfly()
	mesh()
}

func hypercube() {
	fmt.Println("== Hypercube (Pleiades-style), Harper's theorem ==")
	D := 4
	g, err := topo.Hypercube(D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q%d: %d vertices, bisection %d\n", D, g.N(), mustInt(iso.HypercubeBisection(D)))
	fmt.Println(" t  Harper  exhaustive")
	for t := 1; t <= 8; t++ {
		h, err := iso.HarperPerimeter(D, t)
		if err != nil {
			log.Fatal(err)
		}
		ex, _, err := g.MinPerimeter(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d  %6d  %10.0f\n", t, h, ex)
	}
	fmt.Println()
}

func hyperx() {
	fmt.Println("== HyperX K4 x K3 (clique product), Lindsey's theorem ==")
	dims := torus.Shape{4, 3}
	g, err := topo.CliqueProduct(dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K%s: %d vertices, bisection %d\n", dims, g.N(), mustInt(iso.HyperXBisection(dims)))
	fmt.Println(" t  Lindsey  exhaustive")
	for t := 1; t <= 6; t++ {
		l, err := iso.LindseyPerimeter(dims, t)
		if err != nil {
			log.Fatal(err)
		}
		ex, _, err := g.MinPerimeter(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d  %7d  %10.0f\n", t, l, ex)
	}
	fmt.Println()
}

func dragonfly() {
	fmt.Println("== Dragonfly (Cray XC-style, scaled down), weighted links ==")
	// Three groups of K4 x K3 with triple-capacity K3 links and
	// weight-4 global links, under the three global arrangements of
	// Hastings et al. [17].
	for _, arr := range []topo.GlobalArrangement{topo.Absolute, topo.Relative, topo.Circulant} {
		cfg := topo.AriesConfig(3, torus.Shape{4, 3})
		cfg.Arrangement = arr
		g, err := topo.Dragonfly(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// The weighted small-set expansion at group granularity: how
		// isolated can a single group be?
		groupSize := 12
		set := make([]bool, g.N())
		for i := 0; i < groupSize; i++ {
			set[i] = true
		}
		cut := g.CutWeight(set)
		sse, err := g.SmallSetExpansion(4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s arrangement: %2d routers, group cut weight %.0f, h_4 = %.4f\n",
			arr, g.N(), cut, sse)
	}
	fmt.Println()
}

func mesh() {
	fmt.Println("== 2D mesh (Ahlswede-Bezrukov), exhaustive ==")
	g, err := topo.Mesh2D(4, 5)
	if err != nil {
		log.Fatal(err)
	}
	w, set, err := g.Bisection()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4x5 mesh bisection: %.0f (no wrap-around links to help)\n", w)
	fmt.Print("one optimal side: ")
	for v, in := range set {
		if in {
			fmt.Printf("%d ", v)
		}
	}
	fmt.Println()
	// Contrast with the 4x5 torus: wrap-around links double the cut.
	res, err := iso.Bisection(torus.Shape{5, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5x4 torus bisection (cuboid-exact): %d\n", res.Perimeter)
}

func mustInt(v int, err error) int {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
