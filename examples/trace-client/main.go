// Trace-client: the consumer's view of the trace-simulation API. It
// submits a trace-driven multi-job scheduling simulation to a running
// netpartd, tails the Server-Sent-Events stream — printing every job
// start/finish as the simulated queue unfolds — and fetches the final
// metrics in the requested encoding.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/netpartd -addr localhost:8080
//	go run ./examples/trace-client -addr localhost:8080
//
// By default it replays a bursty 60-job synthetic trace on JUQUEEN
// under the contention-aware policy with backfill — the paper's §5
// scheduler proposal driven by a queue instead of a single job. Pass
// -policy first-fit to watch the same trace dilate under
// geometry-oblivious placement, or -trace file.json to submit your
// own trace (or trace-grid) document.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
)

func demoTrace(policy string) map[string]any {
	return map[string]any{
		"name":     fmt.Sprintf("demo trace (%s)", policy),
		"machine":  "juqueen",
		"policy":   policy,
		"backfill": true,
		"synthetic": map[string]any{
			"jobs": 60, "seed": 7, "arrival": "burst", "burst_size": 6, "rate_hz": 0.08,
			"sizes": []int{1, 2, 4, 8}, "mean_runtime_sec": 300,
			"pattern": "pairing", "pattern_fraction": 0.5,
		},
	}
}

func main() {
	addr := flag.String("addr", "localhost:8080", "netpartd address")
	policy := flag.String("policy", "contention-aware", "placement policy for the demo trace")
	traceFile := flag.String("trace", "", "trace JSON file (default: built-in demo trace)")
	format := flag.String("format", "markdown", "final result encoding: json, csv or markdown")
	flag.Parse()
	log.SetFlags(0)
	base := "http://" + *addr

	var body []byte
	if *traceFile != "" {
		var err error
		if body, err = os.ReadFile(*traceFile); err != nil {
			log.Fatal(err)
		}
	} else {
		body, _ = json.Marshal(demoTrace(*policy))
	}

	// Submit the trace.
	resp, err := http.Post(base+"/v1/traces", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %s: %s", resp.Status, doc)
	}
	var job struct {
		ID         string            `json:"id"`
		Experiment string            `json:"experiment"`
		Links      map[string]string `json:"links"`
	}
	if err := json.Unmarshal(doc, &job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (experiment %s)\n", job.ID, job.Experiment)

	// Tail the event stream: the queue unfolding in simulation time.
	events, err := http.Get(base + job.Links["events"])
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	sc := bufio.NewScanner(events.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "job":
				var ev struct {
					Kind          string  `json:"kind"`
					TimeSec       float64 `json:"time_sec"`
					Job           int     `json:"job"`
					Midplanes     int     `json:"midplanes"`
					Geometry      string  `json:"geometry"`
					Dilation      float64 `json:"dilation"`
					FreeMidplanes int     `json:"free_midplanes"`
					Backfilled    bool    `json:"backfilled"`
				}
				if json.Unmarshal([]byte(data), &ev) != nil {
					continue
				}
				note := ""
				if ev.Backfilled {
					note = "  (backfilled)"
				}
				if ev.Dilation > 1 {
					note += fmt.Sprintf("  dilation %.2fx", ev.Dilation)
				}
				fmt.Printf("  t=%8.0fs  %-6s job %3d  %2d midplanes as %-8s free %2d%s\n",
					ev.TimeSec, ev.Kind, ev.Job, ev.Midplanes, ev.Geometry, ev.FreeMidplanes, note)
			case "point":
				var p struct {
					Index  int `json:"index"`
					Result *struct {
						Metrics struct {
							MakespanSec float64 `json:"makespan_sec"`
							ContentionX float64 `json:"contention_x"`
						} `json:"metrics"`
					} `json:"result"`
					Err string `json:"error"`
				}
				if json.Unmarshal([]byte(data), &p) != nil {
					continue
				}
				if p.Err != "" {
					fmt.Printf("  point %2d  ERROR %s\n", p.Index, p.Err)
				} else if p.Result != nil {
					fmt.Printf("  point %2d  makespan %.0fs  contention %.2fx\n",
						p.Index, p.Result.Metrics.MakespanSec, p.Result.Metrics.ContentionX)
				}
			case "progress":
				var pr struct{ Done, Total int }
				if json.Unmarshal([]byte(data), &pr) == nil && pr.Done == pr.Total {
					fmt.Printf("  all %d jobs done\n", pr.Total)
				}
			case "done":
				goto finished
			}
		}
	}
finished:

	// Fetch the final metrics in the requested encoding.
	res, err := http.Get(base + job.Links["self"] + "?format=" + *format)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	final, _ := io.ReadAll(res.Body)
	if res.StatusCode != http.StatusOK {
		log.Fatalf("result: %s: %s", res.Status, final)
	}
	fmt.Printf("\nresult (%s, ETag %s):\n\n%s\n", *format, res.Header.Get("ETag"), final)
}
