// Experiment-runner: the Registry/Runner API end-to-end. Enumerates
// every registered artifact of the paper's evaluation, runs them with
// a bounded worker pool and live progress, renders each result, and
// shows cancellation and machine-readable output — the usage pattern a
// batch or HTTP frontend would build on.
//
// Usage:
//
//	experiment-runner                 # run all 14 artifacts
//	experiment-runner -id figure3     # one artifact
//	experiment-runner -json           # JSON results
//	experiment-runner -max-cost moderate   # skip the heavy simulations
//	experiment-runner -timeout 100ms  # demonstrate prompt cancellation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"netpart"
)

// costRank orders cost classes for the -max-cost filter.
var costRank = map[netpart.Cost]int{netpart.CostCheap: 0, netpart.CostModerate: 1, netpart.CostHeavy: 2}

func main() {
	id := flag.String("id", "", "run one experiment by ID (default: all)")
	workers := flag.Int("workers", 0, "worker pool bound (0 = all CPUs)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of rendered tables")
	maxCost := flag.String("max-cost", "heavy", "skip experiments costlier than this (cheap, moderate, heavy)")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	flag.Parse()

	limit, ok := costRank[netpart.Cost(*maxCost)]
	if !ok {
		log.Fatalf("unknown cost class %q", *maxCost)
	}

	// Ctrl-C or the -timeout deadline cancels in-flight sweeps
	// promptly: the worker pools stop handing out rows and the
	// flow-level simulator aborts between rounds.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runner := netpart.NewRunner(
		netpart.WithWorkers(*workers),
		netpart.WithProgress(func(p netpart.Progress) {
			fmt.Fprintf(os.Stderr, "\r%-9s %d/%d", p.Experiment, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}),
	)

	experiments := netpart.Registry()
	if *id != "" {
		exp, ok := netpart.Lookup(*id)
		if !ok {
			log.Fatalf("no experiment %q; known IDs: %v", *id, netpart.IDs())
		}
		experiments = []netpart.Experiment{exp}
	}

	start := time.Now()
	ran := 0
	for _, exp := range experiments {
		if costRank[exp.Cost] > limit {
			fmt.Fprintf(os.Stderr, "skipping %s (%s)\n", exp.ID, exp.Cost)
			continue
		}
		res, err := runner.Run(ctx, exp.ID)
		if err != nil {
			log.Fatalf("%s: %v", exp.ID, err)
		}
		ran++
		if *jsonOut {
			js, err := res.JSON()
			if err != nil {
				log.Fatal(err)
			}
			os.Stdout.Write(js)
			fmt.Println()
			continue
		}
		fmt.Print(res.Table.Render())
		fmt.Printf("[%s · %s · %v]\n\n", exp.ID, exp.Cost, res.Meta.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "%d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
