// Strong-scaling-pitfall: reproduces the warning of the paper's §4.3 —
// when a scheduler silently mixes partition geometries, a perfectly
// scalable algorithm can look like it stops scaling.
//
// We "run" the same Strassen-Winograd computation (n = 9408) on 2, 4
// and 8 midplanes three times: with best-case geometries, with
// worst-case ones, and with a mix (lucky small runs, unlucky large
// runs), and print the communication-scaling tables a user would
// compute from the measurements alone — the paper's Figure 6 analysis.
package main

import (
	"fmt"
	"log"

	"netpart/internal/bgq"
	"netpart/internal/experiments"
	"netpart/internal/model"
	"netpart/internal/tabulate"
)

func main() {
	scenarios := []struct {
		name      string
		pickWorst func(mp int) bool
	}{
		{"scheduler always hands out best-case geometries", func(mp int) bool { return false }},
		{"scheduler always hands out worst-case geometries", func(mp int) bool { return true }},
		{"mixed: lucky at 2 and 4 midplanes, unlucky at 8", func(mp int) bool { return mp >= 8 }},
	}

	for _, sc := range scenarios {
		t := tabulate.Table{
			Title:   sc.name,
			Headers: []string{"midplanes", "geometry", "bisection", "comm (s)", "comm speedup vs 2mp", "ideal"},
		}
		var base float64
		for _, mp := range []int{2, 4, 8} {
			cur, prop := experiments.Table4Partitions(mp)
			p := prop
			if sc.pickWorst(mp) {
				p = cur
			}
			pred := predict(mp, p)
			if mp == 2 {
				base = pred.CommSec
			}
			t.AddRow(mp, p.String(), p.BisectionBW(), pred.CommSec,
				fmt.Sprintf("%.2fx", base/pred.CommSec),
				fmt.Sprintf("%.2fx", float64(mp)/2))
		}
		fmt.Print(t.Render())
		fmt.Println()
	}

	fmt.Println("All three tables ran the identical computation. In the mixed table the")
	fmt.Println("4->8 midplane step appears to hit a scaling wall — but the wall is the")
	fmt.Println("allocation geometry (bisection 512 links instead of 1024), not the")
	fmt.Println("algorithm. A user who cannot see the partition geometry would wrongly")
	fmt.Println("conclude the code stops strong-scaling at 4 midplanes (paper §4.3).")
}

func predict(mp int, p bgq.Partition) model.Prediction {
	pred, err := model.PredictMatmul(experiments.Table4Config(mp, p))
	if err != nil {
		log.Fatal(err)
	}
	return pred
}
