// Cluster-client: the consumer's view of the live-cluster session
// API. Where trace-client submits a complete trace and waits,
// cluster-client opens a long-running simulated cluster session on a
// netpartd, streams jobs into it batch by batch (with idempotent
// client-supplied job IDs), tails the Server-Sent-Events stream as the
// engine places, starts and finishes them, polls a metrics snapshot
// mid-flight, and finally deletes the session to drain the remaining
// schedule and print the tracesim-shaped final metrics.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/netpartd -addr localhost:8080
//	go run ./examples/cluster-client -addr localhost:8080
//
// By default the session free-runs: the virtual clock jumps to each
// submitted arrival and the schedule drains instantly on delete. Pass
// -time-scale 60 to tie the virtual clock to wall time (60 simulated
// seconds per real second) and watch events arrive live instead.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "netpartd address")
	policy := flag.String("policy", "contention-aware", "placement policy")
	timeScale := flag.Float64("time-scale", 0, "virtual seconds per wall second (0 = free-running)")
	batches := flag.Int("batches", 4, "job batches to stream in")
	flag.Parse()
	log.SetFlags(0)
	base := "http://" + *addr

	// Open the session.
	spec := map[string]any{
		"name":     "cluster-client demo",
		"machine":  "juqueen",
		"policy":   *policy,
		"backfill": true,
	}
	if *timeScale > 0 {
		spec["time_scale"] = *timeScale
	}
	var session struct {
		ID    string            `json:"id"`
		Title string            `json:"title"`
		Links map[string]string `json:"links"`
	}
	postJSON(base+"/v1/cluster", spec, &session)
	log.Printf("opened %s: %s", session.ID, session.Title)

	// Tail the event stream in the background.
	events := make(chan string, 256)
	go tailEvents(base+session.Links["events"], events)

	// Stream job batches in. IDs are client-supplied, so a retried
	// batch after a lost response would count as duplicates, never
	// double-schedule.
	sizes := []int{1, 2, 4, 8, 16}
	job := 0
	for b := 0; b < *batches; b++ {
		jobs := make([]map[string]any, 0, 6)
		for i := 0; i < 6; i++ {
			jobs = append(jobs, map[string]any{
				"id":          fmt.Sprintf("demo-%03d", job),
				"midplanes":   sizes[job%len(sizes)],
				"arrival_sec": float64(job) * 120,
				"runtime_sec": 600 + float64(job%5)*120,
				"pattern":     "pairing",
			})
			job++
		}
		var rec struct {
			Accepted  int     `json:"accepted"`
			Submitted int     `json:"submitted"`
			TimeSec   float64 `json:"time_sec"`
		}
		postJSON(base+session.Links["jobs"], map[string]any{"jobs": jobs}, &rec)
		log.Printf("batch %d: accepted %d (lifetime %d), virtual clock %.0fs",
			b+1, rec.Accepted, rec.Submitted, rec.TimeSec)
		drain(events)
	}

	// A mid-flight snapshot: the session keeps state between calls.
	var snap struct {
		Snapshot struct {
			TimeSec  float64 `json:"time_sec"`
			Running  int     `json:"running"`
			Queued   int     `json:"queued"`
			Finished int     `json:"finished"`
		} `json:"snapshot"`
	}
	getJSON(base+session.Links["self"], &snap)
	log.Printf("snapshot: t=%.0fs, %d running / %d queued / %d finished",
		snap.Snapshot.TimeSec, snap.Snapshot.Running, snap.Snapshot.Queued, snap.Snapshot.Finished)

	// Delete the session: the remaining schedule drains and the final
	// tracesim-shaped metrics come back.
	req, err := http.NewRequest(http.MethodDelete, base+session.Links["self"], nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	final, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("delete: %s: %s", resp.Status, final)
	}
	drain(events)
	fmt.Println(string(final))
}

// tailEvents prints the session's SSE frames as they arrive.
func tailEvents(url string, out chan<- string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Printf("events: %v", err)
		close(out)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Kind    string  `json:"kind"`
			JobID   string  `json:"job_id"`
			TimeSec float64 `json:"time_sec"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil || ev.Kind == "" {
			continue
		}
		out <- fmt.Sprintf("  t=%8.0fs  %-10s %s", ev.TimeSec, ev.Kind, ev.JobID)
	}
	close(out)
}

// drain prints whatever events have arrived so far without blocking.
func drain(events <-chan string) {
	for {
		select {
		case line, ok := <-events:
			if !ok {
				return
			}
			log.Print(line)
		default:
			return
		}
	}
}

func postJSON(url string, doc, out any) {
	body, err := json.Marshal(doc)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("POST %s: %s: %s", url, resp.Status, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("POST %s: %v in %s", url, err, raw)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("GET %s: %v in %s", url, err, raw)
	}
}
