// Archive-client: the consumer's view of the persistent result
// archive. It walks the paginated /v1/archive listing of a
// store-backed netpartd — every dynamic result the daemon has ever
// computed, surviving restarts — prints the store stats, and replays
// one entry by content hash, demonstrating that a replay is
// byte-identical to the original computation (same strong ETag, free
// 304 revalidation).
//
// Start a daemon with a store directory, compute something, then run
// the client:
//
//	go run ./cmd/netpartd -addr localhost:8080 -store-dir /tmp/netpart-store
//	go run ./examples/sweep-client -addr localhost:8080
//	go run ./examples/archive-client -addr localhost:8080
//
// Pass -replay sweep:<hash> to fetch a specific entry (default: the
// first listed), and -format json|csv|markdown for the encoding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
)

// info mirrors the store.Info entries of the archive listing.
type info struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"`
	Meta  struct {
		Title string `json:"title,omitempty"`
		Kind  string `json:"kind,omitempty"`
		Cost  string `json:"cost,omitempty"`
	} `json:"meta"`
}

// page mirrors the archive listing document.
type page struct {
	Results []info `json:"results"`
	Next    string `json:"next,omitempty"`
	Store   struct {
		Entries int64 `json:"entries"`
		Bytes   int64 `json:"bytes"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Corrupt int64 `json:"corrupt"`
		Evicted int64 `json:"evictions"`
	} `json:"store"`
}

func main() {
	addr := flag.String("addr", "localhost:8080", "netpartd address")
	replay := flag.String("replay", "", "content hash to replay (default: first listed entry)")
	format := flag.String("format", "markdown", "replay encoding: json, csv or markdown")
	limit := flag.Int("limit", 100, "listing page size")
	flag.Parse()
	log.SetFlags(0)
	base := "http://" + *addr

	// Walk the listing cursor to the end, page by page.
	var entries []info
	var stats page
	after := ""
	for {
		q := url.Values{"limit": {strconv.Itoa(*limit)}}
		if after != "" {
			q.Set("after", after)
		}
		resp, err := http.Get(base + "/v1/archive?" + q.Encode())
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("list: %s: %s", resp.Status, body)
		}
		var p page
		if err := json.Unmarshal(body, &p); err != nil {
			log.Fatal(err)
		}
		entries = append(entries, p.Results...)
		stats = p
		if p.Next == "" {
			break
		}
		after = p.Next
	}

	fmt.Printf("archive: %d entries, %d bytes on disk (hits %d, misses %d, corrupt %d, evicted %d)\n\n",
		stats.Store.Entries, stats.Store.Bytes,
		stats.Store.Hits, stats.Store.Misses, stats.Store.Corrupt, stats.Store.Evicted)
	for _, e := range entries {
		title := e.Meta.Title
		if title == "" {
			title = "(untitled)"
		}
		fmt.Printf("  %-72s %8d B  %s\n", e.ID, e.Bytes, title)
	}
	if len(entries) == 0 {
		fmt.Println("  (empty — run a scenario, sweep or trace first)")
		return
	}

	id := *replay
	if id == "" {
		id = entries[0].ID
	}

	// Replay: the served bytes and ETag are those of the original
	// computation, whether it happened this boot or ten restarts ago.
	res, err := http.Get(base + "/v1/archive/" + url.PathEscape(id) + "?format=" + *format)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		log.Fatalf("replay %s: %s: %s", id, res.Status, body)
	}
	etag := res.Header.Get("ETag")
	fmt.Printf("\nreplay %s (%s, ETag %s):\n\n%s\n", id, *format, etag, body)

	// Revalidation is free: If-None-Match with the ETag answers 304.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/archive/"+url.PathEscape(id)+"?format="+*format, nil)
	req.Header.Set("If-None-Match", etag)
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, res2.Body)
	res2.Body.Close()
	fmt.Printf("revalidation with If-None-Match: %s\n", res2.Status)
}
