// Allocation-advisor: the paper's practical recommendation turned into
// a tool. Given a machine and a job size, it enumerates every
// partition geometry the network supports, ranks them by internal
// bisection bandwidth, and tells the user what to request — and what a
// size-only request might cost them (the §3.2 JUQUEEN inconsistency).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/tabulate"
)

func main() {
	machineName := flag.String("machine", "juqueen", "mira, juqueen, sequoia, juqueen48, juqueen54")
	midplanes := flag.Int("midplanes", 24, "job size in midplanes (512 nodes each)")
	contentionBound := flag.Bool("contention-bound", true, "whether the job is network-contention-bound")
	flag.Parse()

	var m *bgq.Machine
	switch strings.ToLower(*machineName) {
	case "mira":
		m = bgq.Mira()
	case "juqueen":
		m = bgq.Juqueen()
	case "sequoia":
		m = bgq.Sequoia()
	case "juqueen48":
		m = bgq.Juqueen48()
	case "juqueen54":
		m = bgq.Juqueen54()
	default:
		log.Fatalf("unknown machine %q", *machineName)
	}

	fmt.Println(m)
	geoms := m.Geometries(*midplanes)
	if len(geoms) == 0 {
		log.Fatalf("%s cannot host a %d-midplane cuboid; nearest feasible sizes: %v",
			m.Name, *midplanes, nearest(m, *midplanes))
	}

	t := tabulate.Table{
		Title:   fmt.Sprintf("%d-midplane (%d-node) geometries on %s", *midplanes, *midplanes*bgq.MidplaneNodes, m.Name),
		Headers: []string{"geometry", "node network", "bisection (links)", "bisection (GB/s)", "per-node"},
	}
	best, _ := m.Best(*midplanes)
	for _, g := range geoms {
		t.AddRow(g.String(), g.NodeShape().String(), g.BisectionBW(),
			g.BisectionGBps(), fmt.Sprintf("%.4f", g.BWPerNode()))
	}
	fmt.Println()
	fmt.Print(t.Render())

	worst, _ := m.Worst(*midplanes)
	fmt.Printf("\nrecommendation: request geometry %s explicitly.\n", best)
	if !best.Equal(worst) && *contentionBound {
		slow, err := model.SpeedupBound(worst, best)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("a size-only request may be placed as %s instead: up to %.2fx slower for a contention-bound job.\n", worst, slow)
		pairBest := model.StaticPairingTime(model.PaperPairing(best))
		pairWorst := model.StaticPairingTime(model.PaperPairing(worst))
		fmt.Printf("bisection-pairing benchmark estimate: %s -> %.0f s, %s -> %.0f s.\n",
			best, pairBest, worst, pairWorst)
	}
	if cur, ok := m.Predefined(*midplanes); ok && !cur.Equal(best) {
		fmt.Printf("note: the production scheduler would allocate %s (bisection %d); ask the operators for %s.\n",
			cur, cur.BisectionBW(), best)
	}
}

func nearest(m *bgq.Machine, want int) []int {
	var out []int
	for _, s := range m.FeasibleSizes() {
		if s >= want-4 && s <= want+4 {
			out = append(out, s)
		}
	}
	if out == nil {
		out = m.FeasibleSizes()
	}
	return out
}
